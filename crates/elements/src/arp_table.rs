//! `ARPQuerier`: next-hop MAC resolution with a learning ARP table.
//!
//! The standard Click router resolves the next hop's Ethernet address
//! from the destination-IP annotation set by `LookupIPRoute`. This
//! implementation keeps a real IP→MAC table (learned from ARP replies or
//! statically seeded), rewrites the Ethernet header of forwarded
//! packets, and drops packets for unresolvable next hops (a real
//! ARPQuerier would queue them and emit a who-has request; the drop +
//! counter models the fast path the evaluation exercises, where the
//! table is warm).

use pm_click::{Action, Args, ConfigError, Ctx, Element, Pkt};
use pm_mem::{AccessKind, AddressSpace, Region};
use pm_packet::arp::{ArpOp, ArpPacket};
use pm_packet::ether::{EtherHeader, EtherType, ETHER_LEN};
use pm_packet::MacAddr;
use std::collections::HashMap;

/// Entries per hash bucket line in the charged region.
const ENTRIES_PER_LINE: u64 = 4;

/// The ARP querier element.
#[derive(Debug)]
pub struct ArpQuerier {
    /// Our own MAC (source of rewritten frames).
    my_mac: MacAddr,
    /// The IP → MAC table.
    table: HashMap<u32, MacAddr>,
    table_region: Option<Region>,
    /// Fallback MAC for unknown next hops (models a default gateway
    /// entry); `None` drops unresolvable packets.
    default_mac: Option<MacAddr>,
    /// Packets dropped for lack of a resolution.
    pub unresolved: u64,
    /// ARP replies learned.
    pub learned: u64,
}

impl Default for ArpQuerier {
    fn default() -> Self {
        ArpQuerier {
            my_mac: MacAddr([0x02, 0, 0, 0, 0, 0x10]),
            table: HashMap::new(),
            table_region: None,
            default_mac: Some(MacAddr([0x02, 0, 0, 0, 0, 0x20])),
            unresolved: 0,
            learned: 0,
        }
    }
}

impl ArpQuerier {
    /// Seeds a static table entry.
    pub fn add_entry(&mut self, ip: u32, mac: MacAddr) {
        self.table.insert(ip, mac);
    }
}

impl Element for ArpQuerier {
    fn class_name(&self) -> &'static str {
        "ARPQuerier"
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        // Positional entries: "a.b.c.d xx:xx:xx:xx:xx:xx"; the keyword
        // DEFAULT sets/clears the fallback ("none" drops instead).
        for a in &args.items {
            let text = match &a.key {
                Some(k) if k == "DEFAULT" => {
                    if a.value.trim() == "none" {
                        self.default_mac = None;
                    } else {
                        self.default_mac = Some(parse_mac_text(&a.value)?);
                    }
                    continue;
                }
                Some(k) => format!("{k} {}", a.value),
                None => a.value.clone(),
            };
            let mut parts = text.split_whitespace();
            let ip = parts
                .next()
                .and_then(crate::trie::parse_ip)
                .ok_or_else(|| bad(format!("bad ARP entry {text:?}")))?;
            let mac = parse_mac_text(parts.next().unwrap_or(""))?;
            self.add_entry(ip, mac);
        }
        Ok(())
    }

    fn setup(&mut self, space: &mut AddressSpace) {
        // One line per ENTRIES_PER_LINE table slots, sized for 4k hosts.
        self.table_region = Some(space.alloc_pages(4096 / ENTRIES_PER_LINE * 64));
    }

    fn param_loads(&self) -> u32 {
        2
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < ETHER_LEN {
            return Action::Drop;
        }
        let region = self.table_region.expect("setup() ran");

        // Learn from ARP replies passing through.
        if u16::from_be_bytes([pkt.data[12], pkt.data[13]]) == EtherType::ARP.0 {
            if let Ok(arp) = ArpPacket::parse(&pkt.frame()[ETHER_LEN..]) {
                if arp.op == ArpOp::Reply {
                    self.table
                        .insert(u32::from_be_bytes(arp.sender_ip), arp.sender_mac);
                    self.learned += 1;
                    ctx.compute(20);
                    return Action::Drop; // consumed by the querier
                }
            }
        }

        // Resolve the next hop from the destination-IP annotation.
        ctx.read_meta(pkt, "dst_ip_anno");
        let next_hop = u32::from_be_bytes(pkt.annos.dst_ip);
        let bucket = u64::from(next_hop) % (4096 / ENTRIES_PER_LINE);
        ctx.cost += ctx
            .mem
            .access(ctx.core, region.base + bucket * 64, 64, AccessKind::Load);
        ctx.compute(14);

        let mac = self.table.get(&next_hop).copied().or(self.default_mac);
        match mac {
            Some(dst) => {
                EtherHeader {
                    dst,
                    src: self.my_mac,
                    ethertype: EtherType::IPV4,
                }
                .write(pkt.frame_mut());
                ctx.write_data(pkt, 0, 14);
                ctx.write_meta(pkt, "mac_hdr");
                Action::Forward(0)
            }
            None => {
                self.unresolved += 1;
                ctx.touch_state(0, 8, AccessKind::Store);
                Action::Drop
            }
        }
    }
}

fn parse_mac_text(s: &str) -> Result<MacAddr, ConfigError> {
    let mut out = [0u8; 6];
    let mut parts = s.trim().split(':');
    for b in &mut out {
        *b = parts
            .next()
            .and_then(|p| u8::from_str_radix(p, 16).ok())
            .ok_or_else(|| bad(format!("bad MAC {s:?}")))?;
    }
    if parts.next().is_some() {
        return Err(bad(format!("bad MAC {s:?}")));
    }
    Ok(MacAddr(out))
}

fn bad(message: String) -> ConfigError {
    ConfigError::Element {
        element: String::new(),
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::{Annos, ExecPlan, MetadataModel};
    use pm_dpdk::RxDesc;
    use pm_mem::MemoryHierarchy;
    use pm_packet::builder::PacketBuilder;

    fn run(el: &mut ArpQuerier, frame: &mut Vec<u8>, next_hop: [u8; 4]) -> Action {
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.state = pm_mem::Region {
            base: 0xb00,
            size: 64,
        };
        let len = frame.len();
        let mut pkt = Pkt {
            data: frame,
            len,
            desc: RxDesc {
                buf_id: 0,
                len: len as u32,
                rss_hash: 0,
                arrival: pm_sim::SimTime::ZERO,
                gen: pm_sim::SimTime::ZERO,
                seq: 0,
                data_addr: 0x10_000,
                meta_addr: 0x20_000,
                xslot: None,
            },
            meta_addr: 0x20_000,
            annos: Annos {
                dst_ip: next_hop,
                ..Annos::default()
            },
        };
        el.process(&mut ctx, &mut pkt)
    }

    fn querier() -> ArpQuerier {
        let mut el = ArpQuerier::default();
        el.configure(&Args::parse("10.0.0.2 aa:bb:cc:dd:ee:ff"))
            .unwrap();
        el.setup(&mut AddressSpace::new());
        el
    }

    #[test]
    fn rewrites_known_next_hop() {
        let mut el = querier();
        let mut f = PacketBuilder::tcp().frame_len(128).build();
        assert_eq!(run(&mut el, &mut f, [10, 0, 0, 2]), Action::Forward(0));
        let eth = EtherHeader::parse(&f).unwrap();
        assert_eq!(eth.dst, MacAddr([0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff]));
        assert_eq!(eth.src, MacAddr([0x02, 0, 0, 0, 0, 0x10]));
    }

    #[test]
    fn unknown_next_hop_uses_default() {
        let mut el = querier();
        let mut f = PacketBuilder::tcp().frame_len(128).build();
        assert_eq!(run(&mut el, &mut f, [10, 9, 9, 9]), Action::Forward(0));
        let eth = EtherHeader::parse(&f).unwrap();
        assert_eq!(eth.dst, MacAddr([0x02, 0, 0, 0, 0, 0x20]));
    }

    #[test]
    fn no_default_drops() {
        let mut el = ArpQuerier::default();
        el.configure(&Args::parse("DEFAULT none")).unwrap();
        el.setup(&mut AddressSpace::new());
        let mut f = PacketBuilder::tcp().frame_len(128).build();
        assert_eq!(run(&mut el, &mut f, [10, 9, 9, 9]), Action::Drop);
        assert_eq!(el.unresolved, 1);
    }

    #[test]
    fn learns_from_arp_replies() {
        let mut el = ArpQuerier::default();
        el.configure(&Args::parse("DEFAULT none")).unwrap();
        el.setup(&mut AddressSpace::new());

        // Before learning: unresolvable.
        let mut data_pkt = PacketBuilder::tcp().frame_len(128).build();
        assert_eq!(run(&mut el, &mut data_pkt, [10, 0, 0, 77]), Action::Drop);

        // An ARP reply from 10.0.0.77 teaches the table.
        let mut reply = vec![0u8; 60];
        EtherHeader {
            dst: MacAddr([0x02, 0, 0, 0, 0, 0x10]),
            src: MacAddr([0x11; 6]),
            ethertype: EtherType::ARP,
        }
        .write(&mut reply);
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: MacAddr([0x11; 6]),
            sender_ip: [10, 0, 0, 77],
            target_mac: MacAddr([0x02, 0, 0, 0, 0, 0x10]),
            target_ip: [10, 0, 0, 254],
        }
        .write(&mut reply[14..]);
        assert_eq!(run(&mut el, &mut reply, [0, 0, 0, 0]), Action::Drop);
        assert_eq!(el.learned, 1);

        // Now resolvable.
        let mut f = PacketBuilder::tcp().frame_len(128).build();
        assert_eq!(run(&mut el, &mut f, [10, 0, 0, 77]), Action::Forward(0));
        assert_eq!(EtherHeader::parse(&f).unwrap().dst, MacAddr([0x11; 6]));
    }

    #[test]
    fn bad_config_rejected() {
        let mut el = ArpQuerier::default();
        assert!(el.configure(&Args::parse("10.0.0.1 nonsense")).is_err());
        assert!(el
            .configure(&Args::parse("not.an.ip aa:bb:cc:dd:ee:ff"))
            .is_err());
    }
}
