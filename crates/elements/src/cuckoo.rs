//! A bucketized cuckoo hash table.
//!
//! The paper's NAT "uses the DPDK Cuckoo hash table, resulting in more
//! lookups and higher memory usage" (§A.3). This is a from-scratch
//! 2-choice, 4-slot-per-bucket cuckoo table in the style of
//! `rte_hash`: lookups probe at most two buckets (one cache line each);
//! inserts displace entries along a bounded random walk.

use pm_sim::SplitMix64;
use std::hash::{Hash, Hasher};

/// Slots per bucket (one 64-B cache line of entries).
pub const SLOTS: usize = 4;
/// Maximum displacement steps before an insert is declared failed.
const MAX_KICKS: usize = 64;

#[derive(Debug, Clone, Copy)]
struct Entry<K, V> {
    key: K,
    value: V,
}

#[derive(Debug, Clone)]
struct Bucket<K, V> {
    slots: [Option<Entry<K, V>>; SLOTS],
}

impl<K: Copy, V: Copy> Bucket<K, V> {
    fn empty() -> Self {
        Bucket {
            slots: [None; SLOTS],
        }
    }
}

/// A cuckoo hash map with copyable keys and values.
#[derive(Debug, Clone)]
pub struct CuckooHash<K, V> {
    buckets: Vec<Bucket<K, V>>,
    mask: u64,
    len: usize,
    kick_rng: SplitMix64,
    displacements: u64,
    max_chain: u64,
    evictions: u64,
}

/// Outcome of an insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Key inserted into a free slot.
    Inserted,
    /// Key already present; value replaced.
    Replaced,
    /// Table too full; insert failed after the displacement limit.
    Full,
}

fn hash_of<K: Hash>(k: &K, seed: u64) -> u64 {
    // FxHash-style multiply-xor via the std hasher would be
    // platform-stable enough, but we want explicit determinism:
    let mut h = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut h);
    k.hash(&mut h);
    h.finish()
}

impl<K: Hash + Eq + Copy, V: Copy> CuckooHash<K, V> {
    /// Creates a table with `n_buckets` buckets (rounded up to a power of
    /// two). Capacity is `n_buckets * SLOTS` entries at best.
    pub fn new(n_buckets: usize) -> Self {
        let n = n_buckets.next_power_of_two().max(2);
        CuckooHash {
            buckets: vec![Bucket::empty(); n],
            mask: (n - 1) as u64,
            len: 0,
            kick_rng: SplitMix64::new(0xC0C0_0C0C),
            displacements: 0,
            max_chain: 0,
            evictions: 0,
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Maximum entries the table can hold (`buckets × SLOTS`).
    pub fn capacity(&self) -> usize {
        self.buckets.len() * SLOTS
    }

    /// Displacement steps taken across all inserts so far.
    pub fn displacements(&self) -> u64 {
        self.displacements
    }

    /// Longest single displacement chain any insert has walked. Bounded
    /// by the kick limit (64), which `tests/tests/tablescale.rs` pins.
    pub fn max_chain(&self) -> u64 {
        self.max_chain
    }

    /// Entries lost to the displacement limit: a `Full` insert places
    /// the new key but drops the final displaced victim (rte_hash's
    /// failure mode), so each one is a capacity eviction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_pair(&self, key: &K) -> (usize, usize) {
        let h1 = hash_of(key, 0x9E37_79B9);
        let h2 = hash_of(key, 0x517C_C1B7);
        ((h1 & self.mask) as usize, (h2 & self.mask) as usize)
    }

    /// Looks up `key`, reporting the probed bucket indices through
    /// `probe` (for cache charging): the first bucket always, the second
    /// only when the first misses.
    pub fn lookup_visit(&self, key: &K, mut probe: impl FnMut(usize)) -> Option<V> {
        let (b1, b2) = self.bucket_pair(key);
        probe(b1);
        if let Some(v) = self.scan(b1, key) {
            return Some(v);
        }
        probe(b2);
        self.scan(b2, key)
    }

    /// Looks up `key`.
    pub fn lookup(&self, key: &K) -> Option<V> {
        self.lookup_visit(key, |_| {})
    }

    fn scan(&self, b: usize, key: &K) -> Option<V> {
        self.buckets[b]
            .slots
            .iter()
            .flatten()
            .find(|e| e.key == *key)
            .map(|e| e.value)
    }

    fn try_place(&mut self, b: usize, e: Entry<K, V>) -> bool {
        for slot in &mut self.buckets[b].slots {
            if slot.is_none() {
                *slot = Some(e);
                return true;
            }
        }
        false
    }

    /// Inserts `key → value`, visiting each touched bucket via `probe`.
    pub fn insert_visit(
        &mut self,
        key: K,
        value: V,
        mut probe: impl FnMut(usize),
    ) -> InsertOutcome {
        let (b1, b2) = self.bucket_pair(&key);
        probe(b1);
        probe(b2);
        // Replace in place if present.
        for b in [b1, b2] {
            for e in self.buckets[b].slots.iter_mut().flatten() {
                if e.key == key {
                    e.value = value;
                    return InsertOutcome::Replaced;
                }
            }
        }
        let mut entry = Entry { key, value };
        if self.try_place(b1, entry) || self.try_place(b2, entry) {
            self.len += 1;
            return InsertOutcome::Inserted;
        }
        // Random-walk displacement starting from b1.
        let mut b = b1;
        for kick in 0..MAX_KICKS {
            let victim_slot = (self.kick_rng.next_u64() % SLOTS as u64) as usize;
            let victim = self.buckets[b].slots[victim_slot]
                .replace(entry)
                .expect("displacement always targets a full bucket");
            self.displacements += 1;
            entry = victim;
            let (v1, v2) = self.bucket_pair(&entry.key);
            b = if b == v1 { v2 } else { v1 };
            probe(b);
            if self.try_place(b, entry) {
                self.len += 1;
                self.max_chain = self.max_chain.max(kick as u64 + 1);
                return InsertOutcome::Inserted;
            }
        }
        // Undo is skipped (the displaced chain still holds valid entries;
        // only `entry` is dropped) — matching rte_hash's failure mode.
        self.max_chain = self.max_chain.max(MAX_KICKS as u64);
        self.evictions += 1;
        InsertOutcome::Full
    }

    /// Inserts without probe tracking.
    pub fn insert(&mut self, key: K, value: V) -> InsertOutcome {
        self.insert_visit(key, value, |_| {})
    }

    /// Applies `f` to the value stored for `key`, if present (an
    /// in-place update: no displacement, no re-hash). Returns whether
    /// the key was found.
    pub fn update(&mut self, key: &K, f: impl FnOnce(&mut V)) -> bool {
        let (b1, b2) = self.bucket_pair(key);
        for b in [b1, b2] {
            for e in self.buckets[b].slots.iter_mut().flatten() {
                if e.key == *key {
                    f(&mut e.value);
                    return true;
                }
            }
        }
        false
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (b1, b2) = self.bucket_pair(key);
        for b in [b1, b2] {
            for slot in &mut self.buckets[b].slots {
                if matches!(slot, Some(e) if e.key == *key) {
                    let e = slot.take().expect("matched above");
                    self.len -= 1;
                    return Some(e.value);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut h: CuckooHash<u64, u32> = CuckooHash::new(16);
        assert_eq!(h.insert(42, 1), InsertOutcome::Inserted);
        assert_eq!(h.lookup(&42), Some(1));
        assert_eq!(h.insert(42, 2), InsertOutcome::Replaced);
        assert_eq!(h.lookup(&42), Some(2));
        assert_eq!(h.remove(&42), Some(2));
        assert_eq!(h.lookup(&42), None);
        assert!(h.is_empty());
    }

    #[test]
    fn many_entries_with_displacement() {
        let mut h: CuckooHash<u64, u64> = CuckooHash::new(256);
        // Fill to ~75% of the 1024-entry capacity.
        for k in 0..768u64 {
            assert_ne!(h.insert(k, k * 10), InsertOutcome::Full, "k={k}");
        }
        for k in 0..768u64 {
            assert_eq!(h.lookup(&k), Some(k * 10), "k={k}");
        }
        assert_eq!(h.len(), 768);
    }

    #[test]
    fn lookup_probes_at_most_two_buckets() {
        let mut h: CuckooHash<u64, u64> = CuckooHash::new(64);
        for k in 0..100 {
            h.insert(k, k);
        }
        for k in 0..100 {
            let mut probes = 0;
            h.lookup_visit(&k, |_| probes += 1);
            assert!(probes <= 2, "key {k} probed {probes} buckets");
        }
    }

    #[test]
    fn full_table_reports_full() {
        let mut h: CuckooHash<u64, u64> = CuckooHash::new(2);
        let mut full_seen = false;
        for k in 0..64u64 {
            if h.insert(k, k) == InsertOutcome::Full {
                full_seen = true;
                break;
            }
        }
        assert!(full_seen, "a 2-bucket table must eventually fill");
    }

    #[test]
    fn missing_keys_absent() {
        let mut h: CuckooHash<u64, u64> = CuckooHash::new(16);
        h.insert(1, 1);
        assert_eq!(h.lookup(&2), None);
        assert_eq!(h.remove(&2), None);
    }

    #[test]
    fn model_check_against_hashmap() {
        use std::collections::HashMap;
        let mut h: CuckooHash<u32, u32> = CuckooHash::new(512);
        let mut model: HashMap<u32, u32> = HashMap::new();
        let mut rng = SplitMix64::new(99);
        for _ in 0..4_000 {
            let k = (rng.next_u64() % 600) as u32;
            match rng.next_u64() % 3 {
                0 => {
                    if h.insert(k, k + 1) != InsertOutcome::Full {
                        model.insert(k, k + 1);
                    }
                }
                1 => {
                    assert_eq!(h.remove(&k), model.remove(&k), "remove {k}");
                }
                _ => {
                    assert_eq!(h.lookup(&k), model.get(&k).copied(), "lookup {k}");
                }
            }
        }
        assert_eq!(h.len(), model.len());
    }
}
