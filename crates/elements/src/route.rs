//! `LookupIPRoute`: longest-prefix-match routing on the radix trie.

use crate::trie::{parse_cidr, parse_ip, RadixTrie, Route};
use pm_click::{Action, Args, ConfigError, Ctx, Element, Pkt, TableStats};
use pm_mem::{AccessKind, AddressSpace, Region};
use pm_packet::ether::ETHER_LEN;

/// Bytes per trie node in the charged region (two children + route).
const NODE_BYTES: u64 = 16;

/// `LookupIPRoute(CIDR PORT [GW], …, SYNTH "count [seed [nports]]")`:
/// looks up the destination address, sets the destination-IP annotation
/// (next hop) and forwards out the route's port. Drops packets with no
/// matching route.
///
/// `SYNTH` bulk-loads `count` deterministic synthetic prefixes (drawn
/// from the 10/8, 172.16/12 and 192.168/16 families so workload traffic
/// is routable) for million-route table-scaling sweeps, alongside any
/// explicitly listed routes.
///
/// The trie nodes live in a simulated region; every node walked is
/// charged, so bigger tables genuinely cost more cache.
#[derive(Debug, Default)]
pub struct LookupIpRoute {
    trie: RadixTrie,
    nodes_region: Option<Region>,
    max_port: u16,
    /// Route entries installed.
    pub routes: u64,
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that found a route.
    pub hits: u64,
    /// Deepest trie walk any lookup has taken.
    pub max_walk: u64,
    /// Packets dropped for lack of a route.
    pub no_route: u64,
}

impl LookupIpRoute {
    /// Adds a route programmatically.
    pub fn add_route(&mut self, prefix: u32, len: u8, route: Route) {
        self.max_port = self.max_port.max(route.port);
        self.routes += 1;
        self.trie.insert(prefix, len, route);
    }

    /// Installs `count` synthetic routes, derived purely from `seed` so
    /// the same arguments always build the same table.
    pub fn synthesize(&mut self, count: u64, seed: u64, nports: u16) {
        const FAMILIES: [(u32, u8); 3] = [
            (0x0a00_0000, 8),  // 10.0.0.0/8
            (0xac10_0000, 12), // 172.16.0.0/12
            (0xc0a8_0000, 16), // 192.168.0.0/16
        ];
        for i in 0..count {
            let h =
                pm_sim::SplitMix64::new(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
            let (base, base_len) = FAMILIES[(h % 3) as usize];
            // Prefix length from the family base out to /28.
            let len = base_len + ((h >> 8) % u64::from(29 - base_len)) as u8;
            let mask = u32::MAX << (32 - len);
            let host_bits = !(u32::MAX << (32 - base_len));
            let prefix = (base | ((h >> 16) as u32 & host_bits)) & mask;
            let port = ((h >> 48) % u64::from(nports.max(1))) as u16;
            self.add_route(prefix, len, Route { port, gateway: 0 });
        }
    }
}

impl Element for LookupIpRoute {
    fn class_name(&self) -> &'static str {
        "LookupIPRoute"
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        for a in &args.items {
            let bad = |m: String| ConfigError::Element {
                element: String::new(),
                message: m,
            };
            if a.key.as_deref() == Some("SYNTH") {
                // SYNTH "count [seed [nports]]": bulk synthetic routes.
                let mut it = a.value.split_whitespace();
                let count: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(format!("bad SYNTH count in {:?}", a.value)))?;
                let seed: u64 = match it.next() {
                    None => 0x5EED,
                    Some(v) => v
                        .parse()
                        .map_err(|_| bad(format!("bad SYNTH seed in {:?}", a.value)))?,
                };
                let nports: u16 = match it.next() {
                    None => 1,
                    Some(v) => v
                        .parse()
                        .map_err(|_| bad(format!("bad SYNTH nports in {:?}", a.value)))?,
                };
                if it.next().is_some() {
                    return Err(bad(format!("SYNTH takes at most 3 fields: {:?}", a.value)));
                }
                self.synthesize(count, seed, nports);
                continue;
            }
            // Each argument: "CIDR PORT" or "CIDR GW PORT".
            let text = match &a.key {
                Some(k) => format!("{k} {}", a.value),
                None => a.value.clone(),
            };
            let parts: Vec<&str> = text.split_whitespace().collect();
            if parts.len() < 2 || parts.len() > 3 {
                return Err(bad(format!("route {text:?}: expected CIDR [GW] PORT")));
            }
            let (prefix, len) =
                parse_cidr(parts[0]).ok_or_else(|| bad(format!("bad CIDR {:?}", parts[0])))?;
            let (gw, port_text) = if parts.len() == 3 {
                let gw = parse_ip(parts[1]).ok_or_else(|| bad(format!("bad GW {:?}", parts[1])))?;
                (gw, parts[2])
            } else {
                (0, parts[1])
            };
            let port: u16 = port_text
                .parse()
                .map_err(|_| bad(format!("bad port {port_text:?}")))?;
            self.add_route(prefix, len, Route { port, gateway: gw });
        }
        if self.trie.node_count() <= 1 {
            return Err(ConfigError::Element {
                element: String::new(),
                message: "LookupIPRoute needs at least one route".into(),
            });
        }
        Ok(())
    }

    fn setup(&mut self, space: &mut AddressSpace) {
        self.nodes_region = Some(space.alloc(self.trie.node_count() as u64 * NODE_BYTES));
    }

    fn n_outputs(&self) -> u16 {
        self.max_port + 1
    }

    fn param_loads(&self) -> u32 {
        1
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < ETHER_LEN + 20 {
            return Action::Drop;
        }
        ctx.read_data(pkt, (ETHER_LEN + 16) as u64, 4);
        let f = pkt.frame();
        let dst = u32::from_be_bytes([
            f[ETHER_LEN + 16],
            f[ETHER_LEN + 17],
            f[ETHER_LEN + 18],
            f[ETHER_LEN + 19],
        ]);
        let region = self.nodes_region.expect("setup() ran before process()");
        let mut visited = 0u64;
        let result = self.trie.lookup_visit(dst, |node| {
            visited += 1;
            ctx.cost += ctx.mem.access(
                ctx.core,
                region.base + u64::from(node) * NODE_BYTES,
                NODE_BYTES,
                AccessKind::Load,
            );
        });
        ctx.compute(12 + visited * 3);
        self.lookups += 1;
        self.max_walk = self.max_walk.max(visited);
        match result {
            Some(route) => {
                self.hits += 1;
                let next_hop = if route.gateway != 0 {
                    route.gateway
                } else {
                    dst
                };
                pkt.annos.dst_ip = next_hop.to_be_bytes();
                ctx.write_meta(pkt, "dst_ip_anno");
                pkt.annos.paint = route.port as u8;
                ctx.write_meta(pkt, "paint_anno");
                Action::Forward(route.port)
            }
            None => {
                self.no_route += 1;
                ctx.touch_state(0, 8, AccessKind::Store);
                Action::Drop
            }
        }
    }

    fn table_stats(&self) -> Option<TableStats> {
        Some(TableStats {
            name: String::new(),
            kind: "trie",
            capacity: self.trie.node_count() as u64,
            occupancy: self.routes,
            lookups: self.lookups,
            hits: self.hits,
            insertions: self.routes,
            expiries: 0,
            evictions: 0,
            displacements: 0,
            max_chain: self.max_walk,
        })
    }

    fn table_regions(&self) -> Vec<Region> {
        self.nodes_region.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::{Annos, ExecPlan, MetadataModel};
    use pm_dpdk::RxDesc;
    use pm_mem::MemoryHierarchy;
    use pm_packet::builder::PacketBuilder;

    fn element(routes: &str) -> LookupIpRoute {
        let mut el = LookupIpRoute::default();
        el.configure(&Args::parse(routes)).unwrap();
        el.setup(&mut AddressSpace::new());
        el
    }

    fn route_packet(el: &mut LookupIpRoute, dst: [u8; 4]) -> (Action, Annos) {
        let mut f = PacketBuilder::tcp().dst_ip(dst).build();
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.state = pm_mem::Region {
            base: 0x700,
            size: 64,
        };
        let len = f.len();
        let mut pkt = Pkt {
            data: &mut f,
            len,
            desc: RxDesc {
                buf_id: 0,
                len: len as u32,
                rss_hash: 0,
                arrival: pm_sim::SimTime::ZERO,
                gen: pm_sim::SimTime::ZERO,
                seq: 0,
                data_addr: 0x10_000,
                meta_addr: 0x20_000,
                xslot: None,
            },
            meta_addr: 0x20_000,
            annos: Annos::default(),
        };
        let a = el.process(&mut ctx, &mut pkt);
        (a, pkt.annos)
    }

    #[test]
    fn routes_by_longest_prefix() {
        let mut el = element("0.0.0.0/0 0, 10.0.0.0/8 1, 10.1.0.0/16 10.1.0.254 2");
        assert_eq!(el.n_outputs(), 3);

        let (a, an) = route_packet(&mut el, [8, 8, 8, 8]);
        assert_eq!(a, Action::Forward(0));
        assert_eq!(an.dst_ip, [8, 8, 8, 8], "no gateway: next hop = dst");

        let (a, _) = route_packet(&mut el, [10, 200, 0, 1]);
        assert_eq!(a, Action::Forward(1));

        let (a, an) = route_packet(&mut el, [10, 1, 42, 42]);
        assert_eq!(a, Action::Forward(2));
        assert_eq!(an.dst_ip, [10, 1, 0, 254], "gateway becomes next hop");
        assert_eq!(an.paint, 2);
    }

    #[test]
    fn no_route_drops() {
        let mut el = element("10.0.0.0/8 1");
        let (a, _) = route_packet(&mut el, [11, 0, 0, 1]);
        assert_eq!(a, Action::Drop);
        assert_eq!(el.no_route, 1);
    }

    #[test]
    fn config_errors() {
        let mut el = LookupIpRoute::default();
        assert!(el.configure(&Args::parse("")).is_err());
        assert!(el.configure(&Args::parse("10.0.0.0/8")).is_err());
        assert!(el.configure(&Args::parse("999.0.0.0/8 1")).is_err());
        assert!(el.configure(&Args::parse("10.0.0.0/8 bad.gw 1")).is_err());
    }

    #[test]
    fn synth_routes_are_deterministic_and_routable() {
        let mut a = element("0.0.0.0/0 0, SYNTH 5000 42 4");
        let b = element("0.0.0.0/0 0, SYNTH 5000 42 4");
        assert_eq!(a.routes, 5001);
        assert_eq!(
            a.trie.node_count(),
            b.trie.node_count(),
            "same seed, same trie"
        );
        assert!(a.n_outputs() >= 4, "ports spread over nports");
        // Workload-family destinations resolve to a synthetic prefix,
        // not just the default route, often enough to matter.
        let mut specific = 0;
        for i in 0..256u32 {
            let dst = [10, (i % 256) as u8, (i / 7) as u8, 1];
            let (act, _) = route_packet(&mut a, dst);
            if act != Action::Forward(0) {
                specific += 1;
            }
        }
        assert!(specific > 0, "some 10/8 traffic hits synthetic routes");
        let stats = a.table_stats().unwrap();
        assert_eq!(stats.kind, "trie");
        assert_eq!(stats.occupancy, 5001);
        assert!(stats.capacity > 5001, "trie allocates interior nodes");
        assert!(stats.max_chain > 0 && stats.max_chain <= 33);
        assert_eq!(a.table_regions().len(), 1);
    }

    #[test]
    fn synth_config_errors() {
        let mut el = LookupIpRoute::default();
        assert!(el.configure(&Args::parse("SYNTH nope")).is_err());
        let mut el = LookupIpRoute::default();
        assert!(el.configure(&Args::parse("SYNTH 10 bad")).is_err());
        let mut el = LookupIpRoute::default();
        assert!(el
            .configure(&Args::parse("SYNTH 10 1 2 3, 0.0.0.0/0 0"))
            .is_err());
    }

    #[test]
    fn lookup_charges_memory() {
        let mut el = element("0.0.0.0/0 0, 192.168.0.0/16 1");
        let mut mem = MemoryHierarchy::skylake(1);
        let before = mem.counters().loads;
        {
            let plan = ExecPlan::vanilla(MetadataModel::Copying);
            let mut ctx = Ctx::new(0, &mut mem, &plan);
            ctx.state = pm_mem::Region {
                base: 0x700,
                size: 64,
            };
            let mut f = PacketBuilder::tcp().dst_ip([192, 168, 3, 4]).build();
            let len = f.len();
            let mut pkt = Pkt {
                data: &mut f,
                len,
                desc: RxDesc {
                    buf_id: 0,
                    len: len as u32,
                    rss_hash: 0,
                    arrival: pm_sim::SimTime::ZERO,
                    gen: pm_sim::SimTime::ZERO,
                    seq: 0,
                    data_addr: 0x10_000,
                    meta_addr: 0x20_000,
                    xslot: None,
                },
                meta_addr: 0x20_000,
                annos: Annos::default(),
            };
            el.process(&mut ctx, &mut pkt);
        }
        assert!(
            mem.counters().loads > before + 2,
            "trie walk must charge node loads"
        );
    }
}
