//! `LookupIPRoute`: longest-prefix-match routing on the radix trie.

use crate::trie::{parse_cidr, parse_ip, RadixTrie, Route};
use pm_click::{Action, Args, ConfigError, Ctx, Element, Pkt};
use pm_mem::{AccessKind, AddressSpace, Region};
use pm_packet::ether::ETHER_LEN;

/// Bytes per trie node in the charged region (two children + route).
const NODE_BYTES: u64 = 16;

/// `LookupIPRoute(CIDR PORT [GW], …)`: looks up the destination address,
/// sets the destination-IP annotation (next hop) and forwards out the
/// route's port. Drops packets with no matching route.
///
/// The trie nodes live in a simulated region; every node walked is
/// charged, so bigger tables genuinely cost more cache.
#[derive(Debug, Default)]
pub struct LookupIpRoute {
    trie: RadixTrie,
    nodes_region: Option<Region>,
    max_port: u16,
    /// Packets dropped for lack of a route.
    pub no_route: u64,
}

impl LookupIpRoute {
    /// Adds a route programmatically.
    pub fn add_route(&mut self, prefix: u32, len: u8, route: Route) {
        self.max_port = self.max_port.max(route.port);
        self.trie.insert(prefix, len, route);
    }
}

impl Element for LookupIpRoute {
    fn class_name(&self) -> &'static str {
        "LookupIPRoute"
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        for a in &args.items {
            // Each argument: "CIDR PORT" or "CIDR GW PORT".
            let text = match &a.key {
                Some(k) => format!("{k} {}", a.value),
                None => a.value.clone(),
            };
            let parts: Vec<&str> = text.split_whitespace().collect();
            let bad = |m: String| ConfigError::Element {
                element: String::new(),
                message: m,
            };
            if parts.len() < 2 || parts.len() > 3 {
                return Err(bad(format!("route {text:?}: expected CIDR [GW] PORT")));
            }
            let (prefix, len) =
                parse_cidr(parts[0]).ok_or_else(|| bad(format!("bad CIDR {:?}", parts[0])))?;
            let (gw, port_text) = if parts.len() == 3 {
                let gw = parse_ip(parts[1]).ok_or_else(|| bad(format!("bad GW {:?}", parts[1])))?;
                (gw, parts[2])
            } else {
                (0, parts[1])
            };
            let port: u16 = port_text
                .parse()
                .map_err(|_| bad(format!("bad port {port_text:?}")))?;
            self.add_route(prefix, len, Route { port, gateway: gw });
        }
        if self.trie.node_count() <= 1 {
            return Err(ConfigError::Element {
                element: String::new(),
                message: "LookupIPRoute needs at least one route".into(),
            });
        }
        Ok(())
    }

    fn setup(&mut self, space: &mut AddressSpace) {
        self.nodes_region = Some(space.alloc(self.trie.node_count() as u64 * NODE_BYTES));
    }

    fn n_outputs(&self) -> u16 {
        self.max_port + 1
    }

    fn param_loads(&self) -> u32 {
        1
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        if pkt.len < ETHER_LEN + 20 {
            return Action::Drop;
        }
        ctx.read_data(pkt, (ETHER_LEN + 16) as u64, 4);
        let f = pkt.frame();
        let dst = u32::from_be_bytes([
            f[ETHER_LEN + 16],
            f[ETHER_LEN + 17],
            f[ETHER_LEN + 18],
            f[ETHER_LEN + 19],
        ]);
        let region = self.nodes_region.expect("setup() ran before process()");
        let mut visited = 0u64;
        let result = self.trie.lookup_visit(dst, |node| {
            visited += 1;
            ctx.cost += ctx.mem.access(
                ctx.core,
                region.base + u64::from(node) * NODE_BYTES,
                NODE_BYTES,
                AccessKind::Load,
            );
        });
        ctx.compute(12 + visited * 3);
        match result {
            Some(route) => {
                let next_hop = if route.gateway != 0 {
                    route.gateway
                } else {
                    dst
                };
                pkt.annos.dst_ip = next_hop.to_be_bytes();
                ctx.write_meta(pkt, "dst_ip_anno");
                pkt.annos.paint = route.port as u8;
                ctx.write_meta(pkt, "paint_anno");
                Action::Forward(route.port)
            }
            None => {
                self.no_route += 1;
                ctx.touch_state(0, 8, AccessKind::Store);
                Action::Drop
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::{Annos, ExecPlan, MetadataModel};
    use pm_dpdk::RxDesc;
    use pm_mem::MemoryHierarchy;
    use pm_packet::builder::PacketBuilder;

    fn element(routes: &str) -> LookupIpRoute {
        let mut el = LookupIpRoute::default();
        el.configure(&Args::parse(routes)).unwrap();
        el.setup(&mut AddressSpace::new());
        el
    }

    fn route_packet(el: &mut LookupIpRoute, dst: [u8; 4]) -> (Action, Annos) {
        let mut f = PacketBuilder::tcp().dst_ip(dst).build();
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.state = pm_mem::Region {
            base: 0x700,
            size: 64,
        };
        let len = f.len();
        let mut pkt = Pkt {
            data: &mut f,
            len,
            desc: RxDesc {
                buf_id: 0,
                len: len as u32,
                rss_hash: 0,
                arrival: pm_sim::SimTime::ZERO,
                gen: pm_sim::SimTime::ZERO,
                seq: 0,
                data_addr: 0x10_000,
                meta_addr: 0x20_000,
                xslot: None,
            },
            meta_addr: 0x20_000,
            annos: Annos::default(),
        };
        let a = el.process(&mut ctx, &mut pkt);
        (a, pkt.annos)
    }

    #[test]
    fn routes_by_longest_prefix() {
        let mut el = element("0.0.0.0/0 0, 10.0.0.0/8 1, 10.1.0.0/16 10.1.0.254 2");
        assert_eq!(el.n_outputs(), 3);

        let (a, an) = route_packet(&mut el, [8, 8, 8, 8]);
        assert_eq!(a, Action::Forward(0));
        assert_eq!(an.dst_ip, [8, 8, 8, 8], "no gateway: next hop = dst");

        let (a, _) = route_packet(&mut el, [10, 200, 0, 1]);
        assert_eq!(a, Action::Forward(1));

        let (a, an) = route_packet(&mut el, [10, 1, 42, 42]);
        assert_eq!(a, Action::Forward(2));
        assert_eq!(an.dst_ip, [10, 1, 0, 254], "gateway becomes next hop");
        assert_eq!(an.paint, 2);
    }

    #[test]
    fn no_route_drops() {
        let mut el = element("10.0.0.0/8 1");
        let (a, _) = route_packet(&mut el, [11, 0, 0, 1]);
        assert_eq!(a, Action::Drop);
        assert_eq!(el.no_route, 1);
    }

    #[test]
    fn config_errors() {
        let mut el = LookupIpRoute::default();
        assert!(el.configure(&Args::parse("")).is_err());
        assert!(el.configure(&Args::parse("10.0.0.0/8")).is_err());
        assert!(el.configure(&Args::parse("999.0.0.0/8 1")).is_err());
        assert!(el.configure(&Args::parse("10.0.0.0/8 bad.gw 1")).is_err());
    }

    #[test]
    fn lookup_charges_memory() {
        let mut el = element("0.0.0.0/0 0, 192.168.0.0/16 1");
        let mut mem = MemoryHierarchy::skylake(1);
        let before = mem.counters().loads;
        {
            let plan = ExecPlan::vanilla(MetadataModel::Copying);
            let mut ctx = Ctx::new(0, &mut mem, &plan);
            ctx.state = pm_mem::Region {
                base: 0x700,
                size: 64,
            };
            let mut f = PacketBuilder::tcp().dst_ip([192, 168, 3, 4]).build();
            let len = f.len();
            let mut pkt = Pkt {
                data: &mut f,
                len,
                desc: RxDesc {
                    buf_id: 0,
                    len: len as u32,
                    rss_hash: 0,
                    arrival: pm_sim::SimTime::ZERO,
                    gen: pm_sim::SimTime::ZERO,
                    seq: 0,
                    data_addr: 0x10_000,
                    meta_addr: 0x20_000,
                    xslot: None,
                },
                meta_addr: 0x20_000,
                annos: Annos::default(),
            };
            el.process(&mut ctx, &mut pkt);
        }
        assert!(
            mem.counters().loads > before + 2,
            "trie walk must charge node loads"
        );
    }
}
