//! `IPRewriter`: a stateful NAPT on the cuckoo hash table.
//!
//! Outbound packets get their source address rewritten to the external
//! address and their source port to an allocated external port; the
//! mapping is stored in a cuckoo flow table (paper §A.3: "The NAT
//! configuration is stateful and it uses the DPDK Cuckoo hash table,
//! resulting in more lookups and higher memory usage"). Both the IPv4
//! header checksum and the TCP/UDP checksum are patched incrementally.

use crate::cuckoo::{CuckooHash, InsertOutcome};
use pm_click::{Action, Args, ConfigError, Ctx, Element, Pkt, TableStats};
use pm_mem::{AccessKind, AddressSpace, Region};
use pm_packet::checksum::{update16, update32};
use pm_packet::ether::ETHER_LEN;
use pm_packet::ipv4::{self, IpProto, Ipv4Header};
use pm_sim::SimTime;

/// A flow key: (src ip, dst ip, src port, dst port, proto).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// IP protocol.
    pub proto: u8,
}

/// One NAT binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    /// External source port assigned to the flow.
    pub ext_port: u16,
    /// Arrival time of the flow's most recent packet (only refreshed
    /// when an idle timeout is configured).
    pub last: SimTime,
}

/// Default flow-table bucket count (× 4 slots = capacity).
const DEFAULT_BUCKETS: usize = 16384;

/// `IPRewriter(EXTIP a.b.c.d, BUCKETS n, IDLE_US t, EVICT true)`:
/// source NAT with per-flow port allocation.
///
/// `IDLE_US` arms an idle timeout: a binding unused for longer than `t`
/// microseconds is expired on its next lookup and the flow gets a fresh
/// port. `EVICT true` keeps forwarding when the cuckoo displacement walk
/// gives up (the new key is placed, the final victim is dropped) instead
/// of dropping the packet. Both default off, preserving the original
/// drop-on-full, never-expire behaviour byte for byte.
#[derive(Debug)]
pub struct IpRewriter {
    ext_ip: [u8; 4],
    table: CuckooHash<FlowKey, Binding>,
    table_region: Option<Region>,
    next_port: u16,
    /// Idle timeout; `None` disables expiry entirely.
    idle: Option<SimTime>,
    /// Forward (and count an eviction) instead of dropping when the
    /// displacement walk fails.
    evict: bool,
    /// New flows admitted.
    pub flows: u64,
    /// Packets dropped (non-rewritable or table full).
    pub drops: u64,
    /// Flow-table lookups performed.
    pub lookups: u64,
    /// Lookups that found a live binding.
    pub hits: u64,
    /// Bindings expired by the idle timeout.
    pub expiries: u64,
}

impl Default for IpRewriter {
    fn default() -> Self {
        IpRewriter {
            ext_ip: [192, 0, 2, 1],
            table: CuckooHash::new(DEFAULT_BUCKETS),
            table_region: None,
            next_port: 10_000,
            idle: None,
            evict: false,
            flows: 0,
            drops: 0,
            lookups: 0,
            hits: 0,
            expiries: 0,
        }
    }
}

impl IpRewriter {
    fn charge_probe(ctx: &mut Ctx<'_>, region: Region, bucket: usize) {
        ctx.cost += ctx.mem.access(
            ctx.core,
            region.base + (bucket as u64) * 64,
            64,
            AccessKind::Load,
        );
    }

    fn charge_store(ctx: &mut Ctx<'_>, region: Region, bucket: usize) {
        ctx.cost += ctx.mem.access(
            ctx.core,
            region.base + (bucket as u64) * 64,
            64,
            AccessKind::Store,
        );
    }
}

impl Element for IpRewriter {
    fn class_name(&self) -> &'static str {
        "IPRewriter"
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        if let Some(v) = args.get("EXTIP").or_else(|| args.positional(0)) {
            let ip = crate::trie::parse_ip(v).ok_or_else(|| ConfigError::Element {
                element: String::new(),
                message: format!("bad EXTIP {v:?}"),
            })?;
            self.ext_ip = ip.to_be_bytes();
        }
        if let Some(v) = args.get("BUCKETS") {
            let n: usize = v.parse().map_err(|_| ConfigError::Element {
                element: String::new(),
                message: format!("bad BUCKETS {v:?}"),
            })?;
            self.table = CuckooHash::new(n);
        }
        if let Some(v) = args.get("IDLE_US") {
            let us: f64 = v.parse().map_err(|_| ConfigError::Element {
                element: String::new(),
                message: format!("bad IDLE_US {v:?}"),
            })?;
            self.idle = Some(SimTime::from_us(us));
        }
        if let Some(v) = args.get("EVICT") {
            self.evict = matches!(v, "true" | "TRUE" | "1");
        }
        Ok(())
    }

    fn setup(&mut self, space: &mut AddressSpace) {
        // One cache line per bucket, like rte_hash.
        self.table_region = Some(space.alloc_pages(self.table.bucket_count() as u64 * 64));
    }

    fn param_loads(&self) -> u32 {
        2
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action {
        let region = self.table_region.expect("setup() ran before process()");
        if pkt.len < ETHER_LEN + 20 + 8 {
            self.drops += 1;
            return Action::Drop;
        }
        ctx.read_data(pkt, ETHER_LEN as u64, 24);
        let Ok(ip) = Ipv4Header::parse(&pkt.frame()[ETHER_LEN..]) else {
            self.drops += 1;
            return Action::Drop;
        };
        if ip.protocol != IpProto::TCP && ip.protocol != IpProto::UDP {
            // Pass non-port traffic (e.g. ICMP) through unmodified.
            ctx.compute(4);
            return Action::Forward(0);
        }
        let l4_off = ETHER_LEN + ip.header_len;
        // TCP rewrites patch the checksum at l4_off + 16; a frame cut
        // inside the TCP header (wire truncation) must drop, not panic.
        let need = match ip.protocol {
            IpProto::TCP => l4_off + 18,
            _ => l4_off + 8,
        };
        if pkt.len < need {
            self.drops += 1;
            return Action::Drop;
        }
        let f = pkt.frame();
        let key = FlowKey {
            src: ip.src_u32(),
            dst: ip.dst_u32(),
            sport: u16::from_be_bytes([f[l4_off], f[l4_off + 1]]),
            dport: u16::from_be_bytes([f[l4_off + 2], f[l4_off + 3]]),
            proto: ip.protocol.0,
        };

        // Flow-table lookup, charging every probed bucket line. The
        // bucket where the key lands is remembered so expiry/refresh
        // stores hit the same cache line.
        self.lookups += 1;
        let mut found_bucket = 0usize;
        let hit = self.table.lookup_visit(&key, |b| {
            found_bucket = b;
            Self::charge_probe(ctx, region, b);
        });
        ctx.compute(48); // key assembly + two hashes + compares

        let arrival = pkt.desc.arrival;
        let hit = match (hit, self.idle) {
            (Some(b), Some(idle)) if arrival > b.last && arrival - b.last > idle => {
                // Idle flow: tear down the stale binding and fall
                // through to the new-flow path for a fresh port.
                self.table.remove(&key);
                Self::charge_store(ctx, region, found_bucket);
                ctx.compute(30);
                self.expiries += 1;
                None
            }
            (h, _) => h,
        };

        let binding = match hit {
            Some(mut b) => {
                self.hits += 1;
                if self.idle.is_some() {
                    b.last = arrival;
                    self.table.update(&key, |v| v.last = arrival);
                    Self::charge_store(ctx, region, found_bucket);
                }
                b
            }
            None => {
                // New flow: allocate a port and insert.
                let b = Binding {
                    ext_port: self.next_port,
                    last: arrival,
                };
                self.next_port = self.next_port.wrapping_add(1).max(10_000);
                let outcome = self.table.insert_visit(key, b, |bk| {
                    Self::charge_store(ctx, region, bk);
                });
                ctx.compute(85);
                if outcome == InsertOutcome::Full && !self.evict {
                    self.drops += 1;
                    return Action::Drop;
                }
                // On EVICT a Full insert still placed the new key (the
                // displacement walk drops its final victim), so the
                // flow is live and the packet keeps forwarding.
                self.flows += 1;
                b
            }
        };

        // Rewrite source address (patches the IP header checksum) …
        let old_src = u32::from_be_bytes(ip.src);
        ipv4::set_src_in_place(&mut pkt.frame_mut()[ETHER_LEN..], self.ext_ip);
        ctx.write_data(pkt, (ETHER_LEN + ipv4::SRC_OFFSET) as u64, 4);
        ctx.write_data(pkt, (ETHER_LEN + ipv4::CHECKSUM_OFFSET) as u64, 2);

        // … and the source port + transport checksum (pseudo-header uses
        // the source address, so patch both deltas incrementally).
        let csum_off = match ip.protocol {
            IpProto::TCP => Some(l4_off + 16),
            IpProto::UDP => Some(l4_off + 6),
            _ => None,
        };
        let old_port = key.sport;
        let fm = pkt.frame_mut();
        fm[l4_off..l4_off + 2].copy_from_slice(&binding.ext_port.to_be_bytes());
        if let Some(co) = csum_off {
            let old_sum = u16::from_be_bytes([fm[co], fm[co + 1]]);
            if !(ip.protocol == IpProto::UDP && old_sum == 0) {
                let s = update32(old_sum, old_src, u32::from_be_bytes(self.ext_ip));
                let s = update16(s, old_port, binding.ext_port);
                fm[co..co + 2].copy_from_slice(&s.to_be_bytes());
            }
        }
        ctx.write_data(pkt, l4_off as u64, 2);
        if let Some(co) = csum_off {
            ctx.write_data(pkt, co as u64, 2);
        }
        ctx.compute(42);
        Action::Forward(0)
    }

    fn table_stats(&self) -> Option<TableStats> {
        Some(TableStats {
            name: String::new(),
            kind: "cuckoo",
            capacity: self.table.capacity() as u64,
            occupancy: self.table.len() as u64,
            lookups: self.lookups,
            hits: self.hits,
            insertions: self.flows,
            expiries: self.expiries,
            evictions: self.table.evictions(),
            displacements: self.table.displacements(),
            max_chain: self.table.max_chain(),
        })
    }

    fn table_regions(&self) -> Vec<Region> {
        self.table_region.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::{Annos, ExecPlan, MetadataModel};
    use pm_dpdk::RxDesc;
    use pm_mem::MemoryHierarchy;
    use pm_packet::builder::PacketBuilder;
    use pm_packet::checksum::{fold, pseudo_header_sum, sum_words};
    use pm_packet::tcp::TcpHeader;

    fn element() -> IpRewriter {
        let mut el = IpRewriter::default();
        el.configure(&Args::parse("EXTIP 198.51.100.9")).unwrap();
        el.setup(&mut AddressSpace::new());
        el
    }

    fn rewrite_at(el: &mut IpRewriter, frame: &mut Vec<u8>, arrival: SimTime) -> Action {
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.state = pm_mem::Region {
            base: 0x900,
            size: 64,
        };
        let len = frame.len();
        let mut pkt = Pkt {
            data: frame,
            len,
            desc: RxDesc {
                buf_id: 0,
                len: len as u32,
                rss_hash: 0,
                arrival,
                gen: pm_sim::SimTime::ZERO,
                seq: 0,
                data_addr: 0x10_000,
                meta_addr: 0x20_000,
                xslot: None,
            },
            meta_addr: 0x20_000,
            annos: Annos::default(),
        };
        el.process(&mut ctx, &mut pkt)
    }

    fn rewrite(el: &mut IpRewriter, frame: &mut Vec<u8>) -> Action {
        rewrite_at(el, frame, pm_sim::SimTime::ZERO)
    }

    #[test]
    fn tcp_frame_truncated_inside_header_drops() {
        // Wire truncation can cut a TCP frame between the ports (which
        // the old l4+8 guard covered) and the checksum at l4+16; the
        // rewrite must drop it, not panic indexing the checksum.
        let mut el = element();
        let full = PacketBuilder::tcp()
            .src_ip([10, 0, 0, 5])
            .src_port(5555)
            .payload_len(16)
            .build();
        for cut in 42..52 {
            let mut f = full[..cut].to_vec();
            assert_eq!(rewrite(&mut el, &mut f), Action::Drop, "cut at {cut}");
        }
        // A frame that still covers the checksum field rewrites fine.
        let mut f = full[..52].to_vec();
        assert_eq!(rewrite(&mut el, &mut f), Action::Forward(0));
    }

    #[test]
    fn rewrites_source_and_keeps_checksums_valid() {
        let mut el = element();
        let mut f = PacketBuilder::tcp()
            .src_ip([10, 0, 0, 5])
            .src_port(5555)
            .payload_len(16)
            .build();
        assert_eq!(rewrite(&mut el, &mut f), Action::Forward(0));

        let ip = Ipv4Header::parse(&f[14..]).unwrap();
        assert_eq!(ip.src, [198, 51, 100, 9]);
        assert!(ip.verify_checksum(&f[14..]), "IP checksum patched");

        let tcp = TcpHeader::parse(&f[34..]).unwrap();
        assert_eq!(tcp.src_port, 10_000, "first allocated external port");

        // Verify the TCP checksum end to end over the pseudo-header.
        let seg_len = (ip.total_len as usize) - 20;
        let acc = pseudo_header_sum(ip.src, ip.dst, 6, seg_len as u16);
        assert_eq!(
            fold(sum_words(&f[34..34 + seg_len], acc)),
            0xffff,
            "TCP checksum patched incrementally"
        );
        assert_eq!(el.flows, 1);
    }

    #[test]
    fn same_flow_reuses_binding() {
        let mut el = element();
        let mk = || {
            PacketBuilder::tcp()
                .src_ip([10, 0, 0, 5])
                .src_port(7777)
                .build()
        };
        let mut f1 = mk();
        let mut f2 = mk();
        rewrite(&mut el, &mut f1);
        rewrite(&mut el, &mut f2);
        assert_eq!(el.flows, 1, "one binding for one flow");
        let p1 = TcpHeader::parse(&f1[34..]).unwrap().src_port;
        let p2 = TcpHeader::parse(&f2[34..]).unwrap().src_port;
        assert_eq!(p1, p2);
    }

    #[test]
    fn different_flows_get_different_ports() {
        let mut el = element();
        let mut ports = std::collections::HashSet::new();
        for sp in 0..32u16 {
            let mut f = PacketBuilder::tcp().src_port(4000 + sp).build();
            rewrite(&mut el, &mut f);
            ports.insert(TcpHeader::parse(&f[34..]).unwrap().src_port);
        }
        assert_eq!(ports.len(), 32);
        assert_eq!(el.flows, 32);
    }

    #[test]
    fn udp_zero_checksum_left_alone() {
        let mut el = element();
        let mut f = PacketBuilder::udp().payload_len(4).build();
        // Force the "no checksum" marker.
        f[34 + 6] = 0;
        f[34 + 7] = 0;
        rewrite(&mut el, &mut f);
        assert_eq!(&f[34 + 6..34 + 8], &[0, 0], "zero UDP checksum preserved");
    }

    #[test]
    fn icmp_passes_through() {
        let mut el = element();
        let mut f = PacketBuilder::icmp().build();
        let before = f.clone();
        assert_eq!(rewrite(&mut el, &mut f), Action::Forward(0));
        assert_eq!(f, before, "non-TCP/UDP untouched");
        assert_eq!(el.flows, 0);
    }

    #[test]
    fn idle_timeout_expires_and_reallocates() {
        let mut el = IpRewriter::default();
        el.configure(&Args::parse("EXTIP 198.51.100.9, IDLE_US 10"))
            .unwrap();
        el.setup(&mut AddressSpace::new());
        let mk = || {
            PacketBuilder::tcp()
                .src_ip([10, 0, 0, 5])
                .src_port(7777)
                .build()
        };
        let mut f = mk();
        rewrite_at(&mut el, &mut f, SimTime::ZERO);
        let p0 = TcpHeader::parse(&f[34..]).unwrap().src_port;
        // Inside the timeout: binding reused, `last` refreshed.
        let mut f = mk();
        rewrite_at(&mut el, &mut f, SimTime::from_us(5.0));
        assert_eq!(TcpHeader::parse(&f[34..]).unwrap().src_port, p0);
        assert_eq!(el.expiries, 0);
        // The refresh restarted the clock: 5 + 9 < 5 + 10 keeps it.
        let mut f = mk();
        rewrite_at(&mut el, &mut f, SimTime::from_us(14.0));
        assert_eq!(el.expiries, 0, "refresh-on-hit restarted the idle clock");
        // Past the timeout: expired, a fresh port is allocated.
        let mut f = mk();
        rewrite_at(&mut el, &mut f, SimTime::from_us(100.0));
        let p1 = TcpHeader::parse(&f[34..]).unwrap().src_port;
        assert_ne!(p1, p0, "expired flow reallocates");
        assert_eq!(el.expiries, 1);
        assert_eq!(el.flows, 2);
        let stats = el.table_stats().unwrap();
        assert_eq!(stats.expiries, 1);
        assert_eq!(stats.occupancy, 1, "old binding removed");
    }

    #[test]
    fn evict_policy_forwards_when_table_is_full() {
        let mut el = IpRewriter::default();
        el.configure(&Args::parse("EXTIP 198.51.100.9, BUCKETS 2, EVICT true"))
            .unwrap();
        el.setup(&mut AddressSpace::new());
        for sp in 0..64u16 {
            let mut f = PacketBuilder::tcp().src_port(1000 + sp).build();
            assert_eq!(rewrite(&mut el, &mut f), Action::Forward(0), "sp={sp}");
        }
        assert_eq!(el.drops, 0, "EVICT never drops on full");
        assert_eq!(el.flows, 64);
        let stats = el.table_stats().unwrap();
        assert!(stats.evictions > 0, "the 8-entry table must have evicted");
        assert!(stats.occupancy <= stats.capacity);
    }

    #[test]
    fn default_policy_reports_table_stats() {
        let mut el = element();
        let mut f = PacketBuilder::tcp().src_port(4242).build();
        rewrite(&mut el, &mut f);
        let stats = el.table_stats().unwrap();
        assert_eq!(stats.kind, "cuckoo");
        assert_eq!(stats.capacity, (DEFAULT_BUCKETS * 4) as u64);
        assert_eq!(stats.occupancy, 1);
        assert_eq!(stats.lookups, 1);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.insertions, 1);
        assert_eq!(el.table_regions().len(), 1);
    }

    #[test]
    fn runt_dropped() {
        let mut el = element();
        let mut f = vec![0u8; 30];
        assert_eq!(rewrite(&mut el, &mut f), Action::Drop);
        assert_eq!(el.drops, 1);
    }
}
