//! The paper's NF configurations (§A.1–A.4) as Click-language presets.

/// §A.1 — the simple forwarder: receive, swap MACs, transmit.
pub fn forwarder() -> String {
    "\
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> EtherMirror -> output;
"
    .to_string()
}

/// The default route set: one rule per port, as in the paper's router
/// ("with only one rule per port").
pub const ROUTES: &str = "0.0.0.0/0 0, 10.0.0.0/8 0, 172.16.0.0/12 0, 192.168.0.0/16 0";

/// §A.2 — the standard Click IP router: ARP handling, header check,
/// LPM lookup, TTL decrement, re-encapsulation.
pub fn router() -> String {
    format!(
        "\
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
rt :: LookupIPRoute({ROUTES});
input -> c;
c [0] -> ARPResponder(10.0.0.254) -> output;
c [1] -> Discard;
c [2] -> Paint(2) -> CheckIPHeader -> GetIPAddress -> rt;
rt [0] -> DecIPTTL -> EtherEncap(0x0800, 02:00:00:00:00:10, 02:00:00:00:00:20) -> output;
c [3] -> Discard;
"
    )
}

/// §A.3 — the IDS + router: the router path additionally checks
/// TCP/UDP/ICMP headers and VLAN-encapsulates.
pub fn ids_router() -> String {
    format!(
        "\
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
rt :: LookupIPRoute({ROUTES});
input -> c;
c [0] -> ARPResponder(10.0.0.254) -> output;
c [1] -> Discard;
c [2] -> Paint(2) -> CheckIPHeader -> GetIPAddress -> rt;
rt [0] -> CheckHeaders -> DecIPTTL -> VLANEncap(VLAN_ID 42, VLAN_PCP 0) \
-> EtherEncap(0x8100, 02:00:00:00:00:10, 02:00:00:00:00:20) -> output;
c [3] -> Discard;
"
    )
}

/// §A.3 — the stateful NAT (router + source rewriting through the cuckoo
/// flow table).
pub fn nat() -> String {
    format!(
        "\
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
rt :: LookupIPRoute({ROUTES});
input -> c;
c [0] -> ARPResponder(10.0.0.254) -> output;
c [1] -> Discard;
c [2] -> CheckIPHeader -> GetIPAddress -> rt;
rt [0] -> DecIPTTL -> IPRewriter(EXTIP 198.51.100.1) \
-> EtherEncap(0x0800, 02:00:00:00:00:10, 02:00:00:00:00:20) -> output;
c [3] -> Discard;
"
    )
}

/// Extension NF: a stateless firewall in front of the router — ACL rules
/// over the 5-tuple with first-match semantics (default deny). Traffic
/// from the campus source prefixes to web/DNS ports passes; the rest is
/// dropped.
pub fn firewall() -> String {
    format!(
        "\
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
fw :: IPFilter(deny dst 192.168.99.0/24, allow proto tcp dport 80-8080, \
allow proto udp dport 53-123, allow proto icmp);
rt :: LookupIPRoute({ROUTES});
input -> c;
c [0] -> ARPResponder(10.0.0.254) -> output;
c [1] -> Discard;
c [2] -> CheckIPHeader -> fw -> GetIPAddress -> rt;
rt [0] -> DecIPTTL -> ARPQuerier(10.0.0.2 02:aa:aa:aa:aa:01) -> output;
c [3] -> Discard;
"
    )
}

/// Cuckoo bucket count sized so `flows` entries fit at a realistic
/// ~77% load factor (4 slots per bucket, rounded up to a power of two).
pub fn buckets_for(flows: u64) -> u64 {
    let need = (flows as f64 * 1.3 / 4.0).ceil() as u64;
    need.next_power_of_two().max(16)
}

/// The NAT preset scaled to `flows` concurrent flows: the cuckoo table
/// is sized by [`buckets_for`], bindings idle longer than 1 ms expire,
/// and displacement-walk failures evict instead of dropping so churned
/// workloads keep forwarding at high occupancy.
pub fn nat_scaled(flows: u64) -> String {
    let b = buckets_for(flows);
    format!(
        "\
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
rt :: LookupIPRoute({ROUTES});
input -> c;
c [0] -> ARPResponder(10.0.0.254) -> output;
c [1] -> Discard;
c [2] -> CheckIPHeader -> GetIPAddress -> rt;
rt [0] -> DecIPTTL -> IPRewriter(EXTIP 198.51.100.1, BUCKETS {b}, IDLE_US 1000, EVICT true) \
-> EtherEncap(0x0800, 02:00:00:00:00:10, 02:00:00:00:00:20) -> output;
c [3] -> Discard;
"
    )
}

/// The firewall preset scaled to `flows` tracked flows: a conntrack
/// cache sized by [`buckets_for`] short-circuits the rule scan for
/// established flows, with broad allow rules so workload traffic
/// actually populates it.
pub fn firewall_scaled(flows: u64) -> String {
    let b = buckets_for(flows);
    format!(
        "\
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
fw :: IPFilter(CONNTRACK {b}, IDLE_US 1000, deny dst 192.168.99.0/24, \
allow proto tcp, allow proto udp, allow proto icmp);
rt :: LookupIPRoute({ROUTES});
input -> c;
c [0] -> ARPResponder(10.0.0.254) -> output;
c [1] -> Discard;
c [2] -> CheckIPHeader -> fw -> GetIPAddress -> rt;
rt [0] -> DecIPTTL -> ARPQuerier(10.0.0.2 02:aa:aa:aa:aa:01) -> output;
c [3] -> Discard;
"
    )
}

/// The router preset scaled to `routes` synthetic prefixes (plus the
/// four base routes), all forwarding out port 0.
pub fn router_scaled(routes: u64) -> String {
    format!(
        "\
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
rt :: LookupIPRoute({ROUTES}, SYNTH {routes} 177 1);
input -> c;
c [0] -> ARPResponder(10.0.0.254) -> output;
c [1] -> Discard;
c [2] -> Paint(2) -> CheckIPHeader -> GetIPAddress -> rt;
rt [0] -> DecIPTTL -> EtherEncap(0x0800, 02:00:00:00:00:10, 02:00:00:00:00:20) -> output;
c [3] -> Discard;
"
    )
}

/// §A.4 — the synthetic WorkPackage NF: `W` random numbers, `N` accesses
/// into `S` MB, attached to the forwarding configuration.
pub fn work_package(w: u32, s_mb: u32, n: u32) -> String {
    format!(
        "\
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> WorkPackage(W {w}, S {s_mb}, N {n}) -> EtherMirror -> output;
"
    )
}

/// Like [`work_package`] but with the array size in KB (for the fine
/// sweep of Fig. 9).
pub fn work_package_kb(w: u32, s_kb: u64, n: u32) -> String {
    format!(
        "\
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> WorkPackage(W {w}, S_KB {s_kb}, N {n}) -> EtherMirror -> output;
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard_registry;
    use pm_click::{ConfigGraph, Graph};

    fn builds(cfg: &str) -> Graph {
        let parsed = ConfigGraph::parse(cfg).unwrap_or_else(|e| panic!("parse: {e}\n{cfg}"));
        Graph::build(&parsed, &standard_registry()).unwrap_or_else(|e| panic!("build: {e}\n{cfg}"))
    }

    #[test]
    fn all_presets_build() {
        for cfg in [
            forwarder(),
            router(),
            ids_router(),
            nat(),
            firewall(),
            work_package(4, 8, 1),
            work_package_kb(0, 256, 5),
            nat_scaled(100_000),
            firewall_scaled(100_000),
            router_scaled(10_000),
        ] {
            let g = builds(&cfg);
            assert!(!g.sources.is_empty());
        }
    }

    #[test]
    fn bucket_sizing_covers_flows_at_sane_load() {
        for flows in [1_000u64, 100_000, 1_000_000, 10_000_000] {
            let b = buckets_for(flows);
            let capacity = b * 4;
            assert!(capacity as f64 >= flows as f64 * 1.29, "flows={flows}");
            assert!(b.is_power_of_two());
            assert!(
                capacity <= flows * 6,
                "not absurdly oversized: flows={flows}"
            );
        }
    }

    #[test]
    fn scaled_presets_keep_single_output() {
        for cfg in [
            nat_scaled(10_000),
            firewall_scaled(10_000),
            router_scaled(10_000),
        ] {
            let g = builds(&cfg);
            assert_eq!(g.sources.len(), 1);
        }
    }

    #[test]
    fn router_has_expected_shape() {
        let g = builds(&router());
        assert!(g.find("c").is_some());
        assert!(g.find("rt").is_some());
        assert_eq!(g.sources.len(), 1);
        // 4-way classifier.
        let c = g.find("c").unwrap();
        assert_eq!(g.adj[c].len(), 4);
    }

    #[test]
    fn ids_router_contains_checkheaders_and_vlan() {
        let g = builds(&ids_router());
        assert!(g.elements.iter().any(|e| e.class == "CheckHeaders"));
        assert!(g.elements.iter().any(|e| e.class == "VLANEncap"));
    }

    #[test]
    fn nat_contains_rewriter() {
        let g = builds(&nat());
        assert!(g.elements.iter().any(|e| e.class == "IPRewriter"));
    }

    #[test]
    fn firewall_contains_filter_and_querier() {
        let g = builds(&firewall());
        assert!(g.elements.iter().any(|e| e.class == "IPFilter"));
        assert!(g.elements.iter().any(|e| e.class == "ARPQuerier"));
    }
}
