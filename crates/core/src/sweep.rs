//! Deterministic parallel sweep runner.
//!
//! The paper's evaluation is a grid of *independent* experiment
//! configurations (NF × metadata model × optimization level × frequency
//! × traffic). Each experiment is a self-contained, seeded, event-driven
//! simulation with no shared mutable state, so a sweep parallelizes
//! perfectly **across** runs while every individual run stays exactly as
//! serial — and therefore bit-identical — as before.
//!
//! [`SweepSpec`] collects labelled runs (an [`ExperimentBuilder`] per
//! run, each carrying its own explicit seed, or an arbitrary job closure
//! for non-FastClick dataplanes) and executes them on a pool of
//! work-stealing `std::thread` workers. Results are returned **in input
//! order** regardless of thread count or completion order, so output
//! built from a sweep is byte-identical at `threads = 1` and
//! `threads = N`.
//!
//! The worker count comes from, in priority order: an explicit
//! [`SweepSpec::run_with_threads`] argument, [`set_default_threads`]
//! (set by the `--threads` CLI flag via
//! [`configure_threads_from_args`]), the `PM_THREADS` environment
//! variable, and finally [`std::thread::available_parallelism`].

use crate::engine::Measurement;
use crate::experiment::{ExperimentBuilder, ExperimentError};
use crate::report::{measurement_to_json, RunReport, SCHEMA};
use pm_telemetry::{Json, Table};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

type Job =
    Box<dyn FnOnce() -> Result<(Measurement, Option<RunReport>), ExperimentError> + Send + 'static>;

/// Process-wide default worker count override (0 = unset).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide default for per-element profiling:
/// 0 = unset (fall back to `PM_PROFILE`), 1 = off, 2 = on.
static DEFAULT_PROFILE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide default for wall-clock timing lines:
/// 0 = unset (fall back to `PM_TIMING`), 1 = off, 2 = on.
static DEFAULT_TIMING: AtomicUsize = AtomicUsize::new(0);

/// Process-wide default fault plan (`--faults <spec>` / `PM_FAULTS`).
/// `None` inside the mutex = unset (fall back to `PM_FAULTS`).
static DEFAULT_FAULTS: Mutex<Option<Option<pm_sim::FaultPlan>>> = Mutex::new(None);

/// Process-wide default workload (`--workload <spec>` / `PM_WORKLOAD`).
/// `None` inside the mutex = unset (fall back to `PM_WORKLOAD`).
static DEFAULT_WORKLOAD: Mutex<Option<Option<pm_traffic::WorkloadSpec>>> = Mutex::new(None);

/// Process-wide default flight-recorder timeline window:
/// 0 = unset (fall back to `PM_TIMELINE`), 1 = explicitly off, else the
/// `f64::to_bits` of the window in µs (a positive window never encodes
/// to 0 or 1).
static DEFAULT_TIMELINE: AtomicU64 = AtomicU64::new(0);

/// Process-wide default lifecycle-trace destination (`--trace <path>` /
/// `PM_TRACE`). `None` inside the mutex = unset (fall back to
/// `PM_TRACE`).
static DEFAULT_TRACE: Mutex<Option<Option<PathBuf>>> = Mutex::new(None);

/// The timeline window `--timeline` / `PM_TIMELINE=1` select when no
/// explicit width is given, in µs.
pub const DEFAULT_TIMELINE_WINDOW_US: f64 = 100.0;

/// Overrides the process-wide timeline default for runs that don't set
/// [`ExperimentBuilder::timeline_us`] explicitly (the `--timeline` CLI
/// flag). `None` explicitly disables recording regardless of
/// `PM_TIMELINE`.
///
/// # Panics
///
/// Panics on a non-positive window.
pub fn set_default_timeline(window_us: Option<f64>) {
    let v = match window_us {
        None => 1,
        Some(w) => {
            assert!(w > 0.0, "timeline window must be positive, got {w}");
            w.to_bits()
        }
    };
    DEFAULT_TIMELINE.store(v, Ordering::Relaxed);
}

/// The timeline default, in µs: [`set_default_timeline`] (set by
/// `--timeline[=window_us]`), else `PM_TIMELINE` (`1` = the default
/// window, a number = that window in µs, `0`/unset = off).
pub fn default_timeline() -> Option<f64> {
    match DEFAULT_TIMELINE.load(Ordering::Relaxed) {
        0 => std::env::var("PM_TIMELINE")
            .ok()
            .and_then(|v| parse_timeline_value(&v)),
        1 => None,
        bits => Some(f64::from_bits(bits)),
    }
}

/// `--timeline=<v>` / `PM_TIMELINE=<v>` value: `0` disables, `1` picks
/// the default window, any other positive number is the window in µs.
fn parse_timeline_value(v: &str) -> Option<f64> {
    match v {
        "0" => None,
        "" | "1" => Some(DEFAULT_TIMELINE_WINDOW_US),
        other => other.parse::<f64>().ok().filter(|w| *w > 0.0),
    }
}

/// Overrides the process-wide trace destination (the `--trace <path>`
/// CLI flag). Setting a path also turns lifecycle tracing on for runs
/// that don't set [`ExperimentBuilder::packet_trace`] explicitly.
/// `None` explicitly clears it.
pub fn set_default_trace(path: Option<PathBuf>) {
    *DEFAULT_TRACE.lock().expect("trace default poisoned") = Some(path);
}

/// The trace-destination default: [`set_default_trace`] (set by
/// `--trace`), else a non-empty `PM_TRACE` path, else none.
pub fn default_trace() -> Option<PathBuf> {
    if let Some(v) = DEFAULT_TRACE
        .lock()
        .expect("trace default poisoned")
        .as_ref()
    {
        return v.clone();
    }
    std::env::var("PM_TRACE")
        .ok()
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
}

/// Overrides the process-wide fault plan for runs that don't set
/// [`ExperimentBuilder::fault_plan`] explicitly (the `--faults` CLI
/// flag). `None` explicitly clears it (runs unfaulted regardless of
/// `PM_FAULTS`).
pub fn set_default_faults(plan: Option<pm_sim::FaultPlan>) {
    *DEFAULT_FAULTS.lock().expect("fault default poisoned") = Some(plan);
}

/// The fault-plan default: [`set_default_faults`] (set by `--faults`),
/// else a `PM_FAULTS` spec, else none. An unparsable `PM_FAULTS` is a
/// hard error — silently running unfaulted would be worse.
pub fn default_faults() -> Option<pm_sim::FaultPlan> {
    if let Some(v) = DEFAULT_FAULTS
        .lock()
        .expect("fault default poisoned")
        .as_ref()
    {
        return v.clone();
    }
    std::env::var("PM_FAULTS")
        .ok()
        .map(|spec| pm_sim::FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("PM_FAULTS: {e}")))
}

/// Overrides the process-wide workload for runs that don't set
/// [`ExperimentBuilder::workload`] explicitly (the `--workload` CLI
/// flag). `None` explicitly clears it (runs replay the stock trace
/// profiles regardless of `PM_WORKLOAD`).
pub fn set_default_workload(spec: Option<pm_traffic::WorkloadSpec>) {
    *DEFAULT_WORKLOAD.lock().expect("workload default poisoned") = Some(spec);
}

/// The workload default: [`set_default_workload`] (set by
/// `--workload`), else a `PM_WORKLOAD` spec, else none. An unparsable
/// `PM_WORKLOAD` is a hard error — silently replaying the stock
/// profiles would be worse.
pub fn default_workload() -> Option<pm_traffic::WorkloadSpec> {
    if let Some(v) = DEFAULT_WORKLOAD
        .lock()
        .expect("workload default poisoned")
        .as_ref()
    {
        return v.clone();
    }
    std::env::var("PM_WORKLOAD").ok().map(|spec| {
        pm_traffic::WorkloadSpec::parse(&spec).unwrap_or_else(|e| panic!("PM_WORKLOAD: {e}"))
    })
}

/// Overrides the process-wide timing default (the `--timing` CLI flag).
pub fn set_default_timing(on: bool) {
    DEFAULT_TIMING.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The timing default: [`set_default_timing`] (set by the `--timing`
/// CLI flag), else `PM_TIMING=1`, else off. Timing output goes to
/// stderr only, so `--json` artifacts and redirected stdout stay
/// byte-identical whether or not timing is enabled.
pub fn default_timing() -> bool {
    match DEFAULT_TIMING.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => std::env::var("PM_TIMING").is_ok_and(|v| v == "1"),
    }
}

/// Overrides the process-wide profiling default for runs that don't set
/// [`ExperimentBuilder::profile`] explicitly.
pub fn set_default_profile(on: bool) {
    DEFAULT_PROFILE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The profiling default: [`set_default_profile`] (set by the
/// `--profile` CLI flag), else `PM_PROFILE=1`, else off.
pub fn default_profile() -> bool {
    match DEFAULT_PROFILE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => std::env::var("PM_PROFILE").is_ok_and(|v| v == "1"),
    }
}

/// Overrides the default worker count for subsequent sweeps (takes
/// precedence over `PM_THREADS`). `0` clears the override.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// The worker count a sweep uses when none is given explicitly:
/// [`set_default_threads`], else `PM_THREADS`, else
/// [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    let forced = DEFAULT_THREADS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var("PM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parses `--threads N` / `--threads=N` from the process arguments,
/// installs the result via [`set_default_threads`], and returns the
/// resolved worker count. Call once from a sweep binary's `main`.
pub fn configure_threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        let arg = &args[i];
        let parsed = if let Some(v) = arg.strip_prefix("--threads=") {
            v.parse::<usize>().ok()
        } else if arg == "--threads" {
            args.get(i + 1).and_then(|v| v.parse::<usize>().ok())
        } else {
            None
        };
        if let Some(n) = parsed.filter(|&n| n > 0) {
            set_default_threads(n);
            return n;
        }
        i += 1;
    }
    default_threads()
}

/// The sweep-relevant command line of a benchmark binary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepCli {
    /// Resolved worker count (`--threads`, `PM_THREADS`, or all cores).
    pub threads: usize,
    /// Whether runs collect per-element profiles (`--profile` or
    /// `PM_PROFILE=1`).
    pub profile: bool,
    /// Whether artifacts print a wall-clock timing line to stderr
    /// (`--timing` or `PM_TIMING=1`).
    pub timing: bool,
    /// Where to write the JSON run-report artifact (`--json <path>`).
    pub json: Option<PathBuf>,
    /// Fault plan injected into every run (`--faults <spec>` or
    /// `PM_FAULTS`).
    pub faults: Option<pm_sim::FaultPlan>,
    /// Simulated core count requested on the command line (`--cores N`
    /// or `PM_CORES`). `None` leaves each binary's default in place.
    /// Note this is *simulated* cores inside one experiment, unlike
    /// `--threads`, which is host workers across experiments.
    pub cores: Option<usize>,
    /// Flight-recorder timeline window in µs (`--timeline[=window_us]`
    /// or `PM_TIMELINE`). `None` = no timeline recording.
    pub timeline: Option<f64>,
    /// Lifecycle-trace destination (`--trace <path>` or `PM_TRACE`);
    /// also enables trace recording when set.
    pub trace: Option<PathBuf>,
    /// Flow-population workload injected into every run
    /// (`--workload <spec>` or `PM_WORKLOAD`).
    pub workload: Option<pm_traffic::WorkloadSpec>,
    /// Flow/route-scale ceiling requested on the command line
    /// (`--flows N`). `None` leaves each binary's default in place.
    pub flows: Option<u64>,
}

/// Parses `--threads N`, `--profile`, `--faults <spec>`, `--cores N`,
/// and `--json <path>` from the process arguments, installs the thread,
/// profile, and fault defaults process-wide, and returns the resolved
/// settings. Call once from a benchmark binary's `main`.
///
/// # Panics
///
/// Panics on an unparsable `--faults` spec (running a different
/// experiment than the one asked for is worse than exiting).
pub fn configure_from_args() -> SweepCli {
    let args: Vec<String> = std::env::args().collect();
    let mut cli = SweepCli::default();
    let mut i = 1;
    while i < args.len() {
        let arg = &args[i];
        if let Some(v) = arg.strip_prefix("--threads=") {
            if let Some(n) = v.parse::<usize>().ok().filter(|&n| n > 0) {
                set_default_threads(n);
            }
        } else if arg == "--threads" {
            if let Some(n) = args
                .get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
            {
                set_default_threads(n);
                i += 1;
            }
        } else if arg == "--profile" {
            set_default_profile(true);
        } else if arg == "--timing" {
            set_default_timing(true);
        } else if let Some(v) = arg.strip_prefix("--faults=") {
            let plan = pm_sim::FaultPlan::parse(v).unwrap_or_else(|e| panic!("--faults: {e}"));
            set_default_faults(Some(plan));
        } else if arg == "--faults" {
            if let Some(spec) = args.get(i + 1) {
                let plan =
                    pm_sim::FaultPlan::parse(spec).unwrap_or_else(|e| panic!("--faults: {e}"));
                set_default_faults(Some(plan));
                i += 1;
            }
        } else if let Some(v) = arg.strip_prefix("--workload=") {
            let spec =
                pm_traffic::WorkloadSpec::parse(v).unwrap_or_else(|e| panic!("--workload: {e}"));
            set_default_workload(Some(spec));
        } else if arg == "--workload" {
            if let Some(spec) = args.get(i + 1) {
                let spec = pm_traffic::WorkloadSpec::parse(spec)
                    .unwrap_or_else(|e| panic!("--workload: {e}"));
                set_default_workload(Some(spec));
                i += 1;
            }
        } else if let Some(v) = arg.strip_prefix("--flows=") {
            cli.flows = v.parse::<u64>().ok().filter(|&n| n > 0);
        } else if arg == "--flows" {
            if let Some(n) = args
                .get(i + 1)
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&n| n > 0)
            {
                cli.flows = Some(n);
                i += 1;
            }
        } else if arg == "--timeline" {
            set_default_timeline(Some(DEFAULT_TIMELINE_WINDOW_US));
        } else if let Some(v) = arg.strip_prefix("--timeline=") {
            if v == "0" {
                set_default_timeline(None); // explicit off
            } else {
                match parse_timeline_value(v) {
                    Some(w) => set_default_timeline(Some(w)),
                    None => panic!("--timeline: invalid window '{v}' (µs, > 0)"),
                }
            }
        } else if let Some(v) = arg.strip_prefix("--trace=") {
            set_default_trace(Some(PathBuf::from(v)));
        } else if arg == "--trace" {
            if let Some(p) = args.get(i + 1) {
                set_default_trace(Some(PathBuf::from(p)));
                i += 1;
            }
        } else if let Some(v) = arg.strip_prefix("--json=") {
            cli.json = Some(PathBuf::from(v));
        } else if arg == "--json" {
            if let Some(p) = args.get(i + 1) {
                cli.json = Some(PathBuf::from(p));
                i += 1;
            }
        } else if let Some(v) = arg.strip_prefix("--cores=") {
            cli.cores = v.parse::<usize>().ok().filter(|&n| n > 0);
        } else if arg == "--cores" {
            if let Some(n) = args
                .get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
            {
                cli.cores = Some(n);
                i += 1;
            }
        }
        i += 1;
    }
    cli.threads = default_threads();
    cli.profile = default_profile();
    cli.timing = default_timing();
    cli.faults = default_faults();
    cli.timeline = default_timeline();
    cli.trace = default_trace();
    cli.workload = default_workload();
    cli.cores = cli.cores.or_else(|| {
        std::env::var("PM_CORES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    });
    cli
}

/// Wraps per-sweep groups (from [`SweepResults::to_json`]) into the
/// top-level artifact document:
/// `{"schema": "packetmill-run-report/v1", "groups": […]}`.
pub fn artifact_document(groups: Vec<Json>) -> Json {
    Json::obj(vec![
        ("schema", Json::Str(SCHEMA.to_string())),
        ("groups", Json::Arr(groups)),
    ])
}

/// A declarative list of labelled experiment runs.
#[derive(Default)]
pub struct SweepSpec {
    runs: Vec<(String, Job)>,
    progress: bool,
}

impl fmt::Debug for SweepSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepSpec")
            .field("runs", &self.runs.len())
            .field("progress", &self.progress)
            .finish()
    }
}

impl SweepSpec {
    /// An empty sweep.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables per-run progress lines on stderr.
    #[must_use]
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Appends one experiment. The builder carries every parameter of
    /// the run, including its explicit RNG seed, so the run's result
    /// does not depend on where or when a worker picks it up.
    pub fn push(&mut self, label: impl Into<String>, builder: ExperimentBuilder) -> &mut Self {
        self.runs.push((
            label.into(),
            Box::new(move || builder.run_with_report().map(|(m, r)| (m, Some(r)))),
        ));
        self
    }

    /// Appends an arbitrary job (e.g. [`ExperimentBuilder::run_with_dataplane`]
    /// for the Fig. 11 framework comparators). The job must be
    /// self-contained: it is executed at most once, on any worker. Jobs
    /// produce no [`RunReport`]; their artifact carries the measurement
    /// only.
    pub fn push_job<F>(&mut self, label: impl Into<String>, job: F) -> &mut Self
    where
        F: FnOnce() -> Result<Measurement, ExperimentError> + Send + 'static,
    {
        self.runs
            .push((label.into(), Box::new(move || job().map(|m| (m, None)))));
        self
    }

    /// Number of queued runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if no runs are queued.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Executes the sweep with [`default_threads`] workers.
    pub fn run(self) -> SweepResults {
        let threads = default_threads();
        self.run_with_threads(threads)
    }

    /// Executes the sweep on `threads` workers and returns outcomes in
    /// input order.
    ///
    /// Workers steal the next unclaimed run from a shared cursor, so
    /// load imbalance (experiments vary widely in cost) never idles a
    /// core while work remains. A panicking run is caught and reported
    /// as a failed [`RunOutcome`]; the rest of the sweep proceeds.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn run_with_threads(self, threads: usize) -> SweepResults {
        assert!(threads > 0, "a sweep needs at least one worker");
        let n = self.runs.len();
        let progress = self.progress;
        let started = Instant::now();

        let slots: Vec<(String, Mutex<Option<Job>>)> = self
            .runs
            .into_iter()
            .map(|(label, job)| (label, Mutex::new(Some(job))))
            .collect();
        let outcomes: Vec<Mutex<Option<RunOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);

        let worker = |_worker_id: usize| loop {
            let idx = cursor.fetch_add(1, Ordering::Relaxed);
            if idx >= n {
                break;
            }
            let (label, slot) = &slots[idx];
            let job = slot
                .lock()
                .expect("job slot")
                .take()
                .expect("each run claimed once");
            let run_started = Instant::now();
            let (result, report) = match catch_unwind(AssertUnwindSafe(job)) {
                Ok(Ok((m, r))) => (
                    Ok(m),
                    r.map(|mut r| {
                        r.label = label.clone();
                        r
                    }),
                ),
                Ok(Err(e)) => (Err(format!("experiment error: {e}")), None),
                Err(payload) => (
                    Err(format!("panicked: {}", panic_message(payload.as_ref()))),
                    None,
                ),
            };
            let seconds = run_started.elapsed().as_secs_f64();
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            if progress {
                match &result {
                    Ok(m) => eprintln!(
                        "[{done}/{n}] {label}: {:.1} Gbps, {:.2} Mpps ({seconds:.2} s)",
                        m.throughput_gbps, m.mpps
                    ),
                    Err(e) => eprintln!("[{done}/{n}] {label}: FAILED — {e} ({seconds:.2} s)"),
                }
            }
            *outcomes[idx].lock().expect("outcome slot") = Some(RunOutcome {
                label: label.clone(),
                result,
                seconds,
                report,
            });
        };

        let threads = threads.min(n.max(1));
        if threads <= 1 {
            worker(0);
        } else {
            std::thread::scope(|s| {
                for w in 0..threads {
                    s.spawn(move || worker(w));
                }
            });
        }

        SweepResults {
            outcomes: outcomes
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("no poison")
                        .expect("all runs executed")
                })
                .collect(),
            threads,
            wall_seconds: started.elapsed().as_secs_f64(),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One finished run: its label, result, and wall-clock cost.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The label given at [`SweepSpec::push`] time.
    pub label: String,
    /// The measurement, or a description of the failure (experiment
    /// error or caught panic).
    pub result: Result<Measurement, String>,
    /// Wall-clock seconds this run took on its worker.
    pub seconds: f64,
    /// The structured run artifact ([`SweepSpec::push`] runs only).
    pub report: Option<RunReport>,
}

impl RunOutcome {
    /// Serializes this outcome for the sweep artifact. Successful
    /// builder runs emit their full [`RunReport`]; job runs emit label +
    /// measurement; failures emit label + error. Wall-clock time is
    /// deliberately excluded so artifacts are byte-identical across
    /// worker counts and machines.
    pub fn to_json(&self) -> Json {
        match (&self.result, &self.report) {
            (Ok(_), Some(r)) => r.to_json(),
            (Ok(m), None) => Json::obj(vec![
                ("label", Json::Str(self.label.clone())),
                ("measurement", measurement_to_json(m)),
            ]),
            (Err(e), _) => Json::obj(vec![
                ("label", Json::Str(self.label.clone())),
                ("error", Json::Str(e.clone())),
            ]),
        }
    }
}

/// Every outcome of a sweep, in input order, plus aggregate timing.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Per-run outcomes, in the order the runs were pushed.
    pub outcomes: Vec<RunOutcome>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
}

impl SweepResults {
    /// The measurements in input order.
    ///
    /// # Panics
    ///
    /// Panics with the failing run's label if any run failed.
    pub fn expect_all(&self) -> Vec<Measurement> {
        self.outcomes
            .iter()
            .map(|o| match &o.result {
                Ok(m) => *m,
                Err(e) => panic!("sweep run '{}' failed: {e}", o.label),
            })
            .collect()
    }

    /// Number of failed runs.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_err()).count()
    }

    /// Sum of per-run wall-clock seconds — what a serial execution of
    /// the same sweep would have cost.
    pub fn serial_seconds(&self) -> f64 {
        self.outcomes.iter().map(|o| o.seconds).sum()
    }

    /// Serializes the sweep as one named artifact group:
    /// `{"name": …, "runs": [RunOutcome::to_json(), …]}` in input order.
    /// Contains no timing or thread-count fields, so the same sweep is
    /// byte-identical at any `--threads`.
    pub fn to_json(&self, name: &str) -> Json {
        Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            (
                "runs",
                Json::Arr(self.outcomes.iter().map(|o| o.to_json()).collect()),
            ),
        ])
    }

    /// The aggregate report.
    pub fn report(&self) -> SweepReport {
        let serial = self.serial_seconds();
        let n = self.outcomes.len();
        SweepReport {
            runs: n,
            failures: self.failures(),
            threads: self.threads,
            serial_seconds: serial,
            wall_seconds: self.wall_seconds,
            mean_run_seconds: if n == 0 { 0.0 } else { serial / n as f64 },
            max_run_seconds: self
                .outcomes
                .iter()
                .map(|o| o.seconds)
                .fold(0.0f64, f64::max),
        }
    }
}

/// Aggregate sweep telemetry: run counts and serial-equivalent vs.
/// actual wall-clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepReport {
    /// Total runs executed.
    pub runs: usize,
    /// Runs that failed (experiment error or panic).
    pub failures: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Sum of per-run seconds (serial-equivalent cost).
    pub serial_seconds: f64,
    /// Actual wall-clock seconds.
    pub wall_seconds: f64,
    /// Mean per-run wall-clock seconds (0 for an empty sweep).
    pub mean_run_seconds: f64,
    /// Slowest single run's wall-clock seconds.
    pub max_run_seconds: f64,
}

impl SweepReport {
    /// Serial-equivalent over actual wall-clock.
    pub fn speedup(&self) -> f64 {
        self.serial_seconds / self.wall_seconds.max(1e-9)
    }

    /// One-line wall-clock summary for stderr (the `--timing` output).
    pub fn timing_line(&self) -> String {
        format!(
            "timing: {:.2} s wall, {:.2} s serial-equivalent; per run mean {:.2} s, max {:.2} s ({} runs, {} threads)",
            self.wall_seconds,
            self.serial_seconds,
            self.mean_run_seconds,
            self.max_run_seconds,
            self.runs,
            self.threads,
        )
    }

    /// Renders as a `pm-telemetry` table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec![
            "runs",
            "failures",
            "threads",
            "serial-equivalent (s)",
            "wall-clock (s)",
            "mean run (s)",
            "max run (s)",
            "speedup",
        ]);
        t.row(vec![
            format!("{}", self.runs),
            format!("{}", self.failures),
            format!("{}", self.threads),
            format!("{:.2}", self.serial_seconds),
            format!("{:.2}", self.wall_seconds),
            format!("{:.2}", self.mean_run_seconds),
            format!("{:.2}", self.max_run_seconds),
            format!("{:.2}x", self.speedup()),
        ]);
        t
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Nf;

    fn mini_builder(i: usize) -> ExperimentBuilder {
        ExperimentBuilder::new(Nf::Forwarder)
            .frequency_ghz(1.2 + 0.3 * i as f64)
            .packets(512)
            .seed(0xCAFE + i as u64)
    }

    #[test]
    fn results_keep_input_order() {
        let mut spec = SweepSpec::new();
        for i in 0..4 {
            spec.push(format!("run-{i}"), mini_builder(i));
        }
        let r = spec.run_with_threads(2);
        let labels: Vec<&str> = r.outcomes.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(labels, ["run-0", "run-1", "run-2", "run-3"]);
        assert_eq!(r.failures(), 0);
    }

    #[test]
    fn report_aggregates() {
        let mut spec = SweepSpec::new();
        spec.push("a", mini_builder(0));
        spec.push("b", mini_builder(1));
        let r = spec.run_with_threads(2);
        let rep = r.report();
        assert_eq!(rep.runs, 2);
        assert_eq!(rep.failures, 0);
        assert_eq!(rep.threads, 2);
        assert!(rep.serial_seconds > 0.0);
        assert!(rep.wall_seconds > 0.0);
        assert!(rep.mean_run_seconds > 0.0);
        assert!(rep.max_run_seconds >= rep.mean_run_seconds);
        let rendered = rep.to_table().to_string();
        assert!(rendered.contains("speedup"));
        let line = rep.timing_line();
        assert!(line.starts_with("timing:"));
        assert!(line.contains("2 runs"));
    }

    #[test]
    fn thread_count_never_exceeds_runs() {
        let mut spec = SweepSpec::new();
        spec.push("only", mini_builder(0));
        let r = spec.run_with_threads(8);
        assert_eq!(r.threads, 1, "clamped to the number of runs");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        SweepSpec::new().run_with_threads(0);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let r = SweepSpec::new().run_with_threads(4);
        assert!(r.outcomes.is_empty());
        assert_eq!(r.report().runs, 0);
    }

    #[test]
    fn experiment_error_is_reported_not_fatal() {
        let mut spec = SweepSpec::new();
        spec.push("bad", ExperimentBuilder::new(Nf::Custom("x -> ;".into())));
        spec.push("good", mini_builder(0));
        let r = spec.run_with_threads(2);
        assert_eq!(r.failures(), 1);
        assert!(r.outcomes[0]
            .result
            .as_ref()
            .unwrap_err()
            .contains("experiment error"));
        assert!(r.outcomes[1].result.is_ok());
    }
}
