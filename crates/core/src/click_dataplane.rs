//! The FastClick graph runtime as a [`Dataplane`].

use pm_click::{Annos, Ctx, ExecPlan, FieldProfile, GraphRuntime, PacketFate, Pkt};
use pm_dpdk::{MetadataModel, RxDesc};
use pm_frameworks::{Dataplane, ProcessResult};
use pm_mem::{Cost, MemoryHierarchy};

/// Wraps a [`GraphRuntime`] so the experiment engine can drive it.
pub struct ClickDataplane {
    rt: GraphRuntime,
    /// Copy of the runtime's plan handed to per-packet contexts (kept in
    /// sync by [`Self::set_packet_layout`]).
    plan: ExecPlan,
    /// Source element index packets enter through.
    source: usize,
    profiling: bool,
    profile: FieldProfile,
    label: String,
}

impl std::fmt::Debug for ClickDataplane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClickDataplane")
            .field("label", &self.label)
            .field("source", &self.source)
            .finish()
    }
}

impl ClickDataplane {
    /// Wraps `rt`, entering packets at its `source_ordinal`-th source
    /// element (0 for single-NIC configurations).
    ///
    /// # Panics
    ///
    /// Panics if the runtime has no such source.
    pub fn new(rt: GraphRuntime, source_ordinal: usize, label: impl Into<String>) -> Self {
        let source = *rt
            .graph
            .sources
            .get(source_ordinal)
            .unwrap_or_else(|| panic!("graph has no source #{source_ordinal}"));
        let plan = rt.plan().clone();
        ClickDataplane {
            rt,
            plan,
            source,
            profiling: false,
            profile: FieldProfile::new(),
            label: label.into(),
        }
    }

    /// Replaces the packet layout (after the reordering pass) in both the
    /// runtime and the context plan.
    pub fn set_packet_layout(&mut self, layout: pm_click::StructLayout) {
        self.rt.set_packet_layout(layout.clone());
        self.plan.packet_layout = layout;
    }

    /// The underlying runtime (for stats).
    pub fn runtime(&self) -> &GraphRuntime {
        &self.rt
    }
}

impl Dataplane for ClickDataplane {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn metadata_model(&self) -> MetadataModel {
        self.plan.metadata_model
    }

    fn process(
        &mut self,
        core: usize,
        mem: &mut MemoryHierarchy,
        desc: &RxDesc,
        data: &mut [u8],
    ) -> ProcessResult {
        let src_scope = self.rt.element_scope(mem, self.source);
        let mut ctx = Ctx::new(core, mem, &self.plan);
        if self.profiling {
            ctx.profile = Some(std::mem::take(&mut self.profile));
        }
        // FromDPDKDevice's per-packet RX loop: batch assembly, packet
        // type + timestamp annotations (partially folded away when the
        // static graph inlines the whole path).
        let entry_start = ctx.cost;
        ctx.compute(if self.plan.static_graph { 24 } else { 40 });
        if let Some(s) = src_scope {
            ctx.mem.profile_charge_at(s, ctx.cost - entry_start);
        }
        let meta_addr = self.rt.begin_packet(&mut ctx, desc);
        let mut pkt = Pkt {
            data,
            len: desc.len as usize,
            desc: *desc,
            meta_addr,
            annos: Annos::default(),
        };
        let fate = self.rt.run(&mut ctx, &mut pkt, self.source);
        self.rt.end_packet(&mut ctx, meta_addr);
        if let Some(p) = ctx.profile.take() {
            self.profile = p;
        }
        let tx_len = match fate {
            PacketFate::Tx { len, .. } => Some(len as u32),
            PacketFate::Dropped { .. } => None,
        };
        ProcessResult {
            tx_len,
            cost: ctx.take_cost(),
        }
    }

    fn per_batch_cost(&self, _n: usize) -> Cost {
        // FastClick task-scheduler pass per input batch.
        Cost::compute(45)
    }

    fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    fn take_profile(&mut self) -> Option<FieldProfile> {
        if self.profile.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.profile))
        }
    }

    fn element_stats(&self) -> Vec<(String, u64, u64)> {
        self.rt.element_stats()
    }

    fn table_stats(&self) -> Vec<pm_click::TableStats> {
        self.rt.table_stats()
    }

    fn table_regions(&self) -> Vec<pm_mem::Region> {
        self.rt.table_regions()
    }

    fn set_span_recording(&mut self, on: bool) {
        self.rt.set_span_recording(on);
    }

    fn take_spans(&mut self, out: &mut Vec<(String, Cost)>) {
        self.rt.take_spans(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_click::{ConfigGraph, Graph};
    use pm_elements::standard_registry;
    use pm_mem::AddressSpace;
    use pm_packet::builder::PacketBuilder;

    fn dataplane(model: MetadataModel) -> ClickDataplane {
        let cfg = ConfigGraph::parse(&pm_elements::configs::router()).unwrap();
        let graph = Graph::build(&cfg, &standard_registry()).unwrap();
        let mut space = AddressSpace::new();
        let rt = GraphRuntime::new(graph, ExecPlan::vanilla(model), &mut space);
        ClickDataplane::new(rt, 0, "FastClick")
    }

    fn desc(len: u32) -> RxDesc {
        RxDesc {
            buf_id: 0,
            len,
            rss_hash: 0,
            arrival: pm_sim::SimTime::ZERO,
            gen: pm_sim::SimTime::ZERO,
            seq: 0,
            data_addr: 0x100_000,
            meta_addr: 0x200_000,
            xslot: None,
        }
    }

    #[test]
    fn router_forwards_ip_and_decrements_ttl() {
        let mut dp = dataplane(MetadataModel::Copying);
        let mut mem = MemoryHierarchy::skylake(1);
        let mut data = PacketBuilder::tcp()
            .dst_ip([192, 168, 7, 7])
            .ttl(64)
            .frame_len(128)
            .build();
        let r = dp.process(0, &mut mem, &desc(128), &mut data);
        assert_eq!(r.tx_len, Some(128));
        let ip = pm_packet::ipv4::Ipv4Header::parse(&data[14..]).unwrap();
        assert_eq!(ip.ttl, 63, "the real router really decremented TTL");
        assert!(ip.verify_checksum(&data[14..]));
        assert!(r.cost.instructions > 50, "router work was charged");
    }

    #[test]
    fn router_drops_corrupt_packets() {
        let mut dp = dataplane(MetadataModel::Copying);
        let mut mem = MemoryHierarchy::skylake(1);
        let mut data = PacketBuilder::tcp().frame_len(128).build();
        data[14 + 10] ^= 0xff; // break the IP checksum
        let r = dp.process(0, &mut mem, &desc(128), &mut data);
        assert_eq!(r.tx_len, None);
    }

    #[test]
    fn router_answers_arp() {
        let mut dp = dataplane(MetadataModel::Copying);
        let mut mem = MemoryHierarchy::skylake(1);
        let mut data = PacketBuilder::arp().dst_ip([10, 0, 0, 254]).build();
        let r = dp.process(0, &mut mem, &desc(60), &mut data);
        assert_eq!(r.tx_len, Some(60), "ARP reply goes back out");
        let arp = pm_packet::arp::ArpPacket::parse(&data[14..]).unwrap();
        assert_eq!(arp.op, pm_packet::arp::ArpOp::Reply);
    }

    #[test]
    fn profiling_collects_field_accesses() {
        let mut dp = dataplane(MetadataModel::Copying);
        dp.set_profiling(true);
        let mut mem = MemoryHierarchy::skylake(1);
        for _ in 0..16 {
            let mut data = PacketBuilder::tcp().frame_len(128).build();
            dp.process(0, &mut mem, &desc(128), &mut data);
        }
        let prof = dp.take_profile().expect("profile collected");
        assert!(prof.get("dst_ip_anno").copied().unwrap_or(0) >= 16);
        assert!(prof.get("net_hdr").copied().unwrap_or(0) >= 16);
    }
}
