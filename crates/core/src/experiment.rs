//! The experiment facade: one builder that assembles configuration
//! parsing, the PacketMill optimization pipeline (including the
//! profile-guided reordering pass), the simulated testbed, and the
//! measurement run.

use crate::click_dataplane::ClickDataplane;
use crate::engine::{Engine, EngineConfig, Measurement};
use crate::report::RunReport;
use pm_click::{ConfigError, ConfigGraph, Graph, GraphRuntime};
use pm_compile::{MillIr, Pass, Pipeline, ReorderFieldsPass};
use pm_dpdk::{MetadataModel, MetadataSpec};
use pm_elements::standard_registry;
use pm_frameworks::Dataplane;
use pm_mem::AddressSpace;
use pm_sim::{FaultPlan, Frequency, SimTime};
use pm_traffic::{Trace, TraceConfig, TrafficProfile, Workload, WorkloadSpec};
use std::error::Error;
use std::fmt;

/// Per-element `(name, packets, drops)` statistics, as exposed by the
/// Click read handlers.
pub type ElementStats = Vec<(String, u64, u64)>;

/// Which network function to run (paper §A).
#[derive(Debug, Clone, PartialEq)]
pub enum Nf {
    /// §A.1 — the simple forwarder (EtherMirror).
    Forwarder,
    /// §A.2 — the standard IP router.
    Router,
    /// §A.3 — IDS + router (+ VLAN encapsulation).
    IdsRouter,
    /// §A.3 — the stateful NAT.
    Nat,
    /// Extension: stateless ACL firewall + router (first-match rules
    /// over the 5-tuple, default deny).
    Firewall,
    /// The NAT preset scaled to a target concurrent-flow count: cuckoo
    /// table sized for the flows, idle-expiry, evict-on-full.
    NatScale(u64),
    /// The firewall preset with a conntrack cache sized to a target
    /// tracked-flow count (established flows skip the rule scan).
    FirewallScale(u64),
    /// The router preset with a synthesized FIB of the given size.
    RouterScale(u64),
    /// §A.4 — the synthetic WorkPackage NF: `w` random numbers, `n`
    /// accesses into `s_mb` megabytes, per packet.
    WorkPackage {
        /// Pseudo-random numbers generated per packet.
        w: u32,
        /// Array size in MB.
        s_mb: u32,
        /// Random accesses per packet.
        n: u32,
    },
    /// Like `WorkPackage` but with KB-granular array size (Fig. 9 sweep).
    WorkPackageKb {
        /// Pseudo-random numbers generated per packet.
        w: u32,
        /// Array size in KB.
        s_kb: u64,
        /// Random accesses per packet.
        n: u32,
    },
    /// A custom Click configuration.
    Custom(String),
}

impl Nf {
    /// The Click configuration text for this NF.
    pub fn config_text(&self) -> String {
        use pm_elements::configs;
        match self {
            Nf::Forwarder => configs::forwarder(),
            Nf::Router => configs::router(),
            Nf::IdsRouter => configs::ids_router(),
            Nf::Nat => configs::nat(),
            Nf::Firewall => configs::firewall(),
            Nf::NatScale(flows) => configs::nat_scaled(*flows),
            Nf::FirewallScale(flows) => configs::firewall_scaled(*flows),
            Nf::RouterScale(routes) => configs::router_scaled(*routes),
            Nf::WorkPackage { w, s_mb, n } => configs::work_package(*w, *s_mb, *n),
            Nf::WorkPackageKb { w, s_kb, n } => configs::work_package_kb(*w, *s_kb, *n),
            Nf::Custom(text) => text.clone(),
        }
    }
}

/// Which PacketMill optimizations to apply (the Fig. 4 / Table 1
/// variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// No optimization.
    Vanilla,
    /// `click-devirtualize` only.
    Devirtualize,
    /// Constant embedding only.
    ConstantEmbed,
    /// Static graph only.
    StaticGraph,
    /// All source-code optimizations.
    AllSource,
    /// Only the profile-guided metadata reordering pass (the §4.1
    /// "LTO & structure reordering" ablation; Copying model only).
    Reorder,
    /// All source-code optimizations plus the profile-guided metadata
    /// reordering pass (applies under the Copying model, like the paper).
    Full,
}

/// Errors from building or running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// The configuration failed to parse or build.
    Config(ConfigError),
    /// Inconsistent experiment parameters.
    Invalid(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Config(e) => write!(f, "configuration error: {e}"),
            ExperimentError::Invalid(m) => write!(f, "invalid experiment: {m}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Config(e) => Some(e),
            ExperimentError::Invalid(_) => None,
        }
    }
}

impl From<ConfigError> for ExperimentError {
    fn from(e: ConfigError) -> Self {
        ExperimentError::Config(e)
    }
}

/// Builds and runs one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    nf: Nf,
    model: MetadataModel,
    opt: OptLevel,
    freq_ghz: f64,
    cores: usize,
    nics: usize,
    offered_gbps: f64,
    packets: usize,
    warmup_fraction: f64,
    traffic: TrafficProfile,
    seed: u64,
    rx_ring: usize,
    burst: usize,
    ddio_ways: Option<usize>,
    pool_mode: Option<pm_dpdk::MempoolMode>,
    spec: Option<MetadataSpec>,
    custom_trace: Option<Trace>,
    profile: Option<bool>,
    faults: Option<FaultPlan>,
    timeline_us: Option<f64>,
    packet_trace: Option<bool>,
    reference_walk: bool,
    workload: Option<WorkloadSpec>,
    hugepage_tables: bool,
}

impl ExperimentBuilder {
    /// Starts a builder for `nf` with the paper's defaults: Copying,
    /// vanilla, 2.3 GHz, one core, one NIC, 100-Gbps offered load,
    /// campus-mix traffic.
    pub fn new(nf: Nf) -> Self {
        ExperimentBuilder {
            nf,
            model: MetadataModel::Copying,
            opt: OptLevel::Vanilla,
            freq_ghz: 2.3,
            cores: 1,
            nics: 1,
            offered_gbps: 100.0,
            packets: 100_000,
            warmup_fraction: 0.2,
            traffic: TrafficProfile::CampusMix,
            seed: 0xCAFE,
            rx_ring: 4096,
            burst: 32,
            ddio_ways: None,
            pool_mode: None,
            spec: None,
            custom_trace: None,
            profile: None,
            faults: None,
            timeline_us: None,
            packet_trace: None,
            reference_walk: false,
            workload: None,
            hugepage_tables: false,
        }
    }

    /// Sets the metadata-management model.
    pub fn metadata_model(mut self, m: MetadataModel) -> Self {
        self.model = m;
        self
    }

    /// Sets the optimization level.
    pub fn optimization(mut self, o: OptLevel) -> Self {
        self.opt = o;
        self
    }

    /// Sets the core frequency in GHz.
    pub fn frequency_ghz(mut self, f: f64) -> Self {
        self.freq_ghz = f;
        self
    }

    /// Sets the number of processing cores (RSS spreads flows).
    pub fn cores(mut self, c: usize) -> Self {
        self.cores = c;
        self
    }

    /// Sets the number of NICs (2 for the >100-Gbps experiment).
    pub fn nics(mut self, n: usize) -> Self {
        self.nics = n;
        self
    }

    /// Sets the offered load per NIC in Gbps.
    pub fn offered_gbps(mut self, g: f64) -> Self {
        self.offered_gbps = g;
        self
    }

    /// Sets the number of generated packets per NIC.
    pub fn packets(mut self, p: usize) -> Self {
        self.packets = p;
        self
    }

    /// Sets the traffic profile.
    pub fn traffic(mut self, t: TrafficProfile) -> Self {
        self.traffic = t;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the RX descriptor ring size.
    pub fn rx_ring(mut self, r: usize) -> Self {
        self.rx_ring = r;
        self
    }

    /// Sets the RX/TX burst size (default 32, like the paper's configs).
    pub fn burst(mut self, b: usize) -> Self {
        self.burst = b;
        self
    }

    /// Overrides the LLC ways DDIO may fill (ablation knob).
    pub fn ddio_ways(mut self, w: usize) -> Self {
        self.ddio_ways = Some(w);
        self
    }

    /// Overrides the mempool recycling order (ablation knob).
    pub fn pool_mode(mut self, m: pm_dpdk::MempoolMode) -> Self {
        self.pool_mode = Some(m);
        self
    }

    /// Overrides the X-Change metadata spec (which fields the driver
    /// delivers; default: [`MetadataSpec::routing`]).
    pub fn metadata_spec(mut self, s: MetadataSpec) -> Self {
        self.spec = Some(s);
        self
    }

    /// Replays an explicit trace (e.g. loaded from a pcap capture)
    /// instead of synthesizing one; used for every NIC.
    pub fn trace(mut self, t: Trace) -> Self {
        self.custom_trace = Some(t);
        self
    }

    /// Enables (or disables) per-element profiling for this run,
    /// overriding the process default ([`crate::sweep::default_profile`],
    /// set by `--profile` or `PM_PROFILE=1`).
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = Some(on);
        self
    }

    /// Whether this run collects a per-element profile: the explicit
    /// [`Self::profile`] override, else the process default.
    pub fn profile_effective(&self) -> bool {
        self.profile.unwrap_or_else(crate::sweep::default_profile)
    }

    /// Injects a deterministic [`FaultPlan`] into this run, overriding
    /// the process default ([`crate::sweep::default_faults`], set by
    /// `--faults <spec>` or `PM_FAULTS`). An empty plan is equivalent to
    /// no plan at all.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The fault plan this run injects: the explicit [`Self::fault_plan`]
    /// override, else the process default — normalized so an empty plan
    /// reads as `None` (the zero-cost baseline).
    pub fn fault_plan_effective(&self) -> Option<FaultPlan> {
        self.faults
            .clone()
            .or_else(crate::sweep::default_faults)
            .filter(|p| !p.is_empty())
    }

    /// Records a flight-recorder timeline with the given virtual-time
    /// window (µs) for this run, overriding the process default
    /// ([`crate::sweep::default_timeline`], set by `--timeline` or
    /// `PM_TIMELINE`).
    pub fn timeline_us(mut self, window_us: f64) -> Self {
        self.timeline_us = Some(window_us);
        self
    }

    /// The timeline window this run records (µs), if any: the explicit
    /// [`Self::timeline_us`] override, else the process default.
    pub fn timeline_us_effective(&self) -> Option<f64> {
        self.timeline_us.or_else(crate::sweep::default_timeline)
    }

    /// Enables (or disables) sampled per-packet lifecycle tracing for
    /// this run, overriding the process default (on whenever a
    /// `--trace <path>` / `PM_TRACE` destination is configured). The
    /// sample set is a pure function of the run seed and packet
    /// identity, so traces are thread-count independent.
    pub fn packet_trace(mut self, on: bool) -> Self {
        self.packet_trace = Some(on);
        self
    }

    /// Whether this run records lifecycle traces: the explicit
    /// [`Self::packet_trace`] override, else on when a process-wide
    /// trace destination is set.
    pub fn packet_trace_effective(&self) -> bool {
        self.packet_trace
            .unwrap_or_else(|| crate::sweep::default_trace().is_some())
    }

    /// Resolves every access program through the reference per-line walk
    /// (signature arming, delta-class replay, and fast-forward all off).
    /// This is the bit-identity regression knob: a run with the flag on
    /// must produce byte-identical artifacts to the same run with it off.
    pub fn reference_walk(mut self, on: bool) -> Self {
        self.reference_walk = on;
        self
    }

    /// Drives the run from a deterministic flow-population workload
    /// (Zipf popularity, seeded churn, attack mixes) instead of the
    /// stock trace profiles, overriding the process default
    /// ([`crate::sweep::default_workload`], set by `--workload <spec>`
    /// or `PM_WORKLOAD`). An explicit [`Self::trace`] wins over both.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = Some(spec);
        self
    }

    /// The workload this run replays, if any: the explicit
    /// [`Self::workload`] override, else the process default.
    pub fn workload_effective(&self) -> Option<WorkloadSpec> {
        self.workload
            .clone()
            .or_else(crate::sweep::default_workload)
    }

    /// Backs element-owned tables (NAT bindings, conntrack, FIB nodes)
    /// with 2-MiB pages, shrinking their DTLB footprint. Off by
    /// default: the 4-KiB baseline is what the flow-scale sweep
    /// contrasts against.
    pub fn hugepage_tables(mut self, on: bool) -> Self {
        self.hugepage_tables = on;
        self
    }

    fn pipeline(&self) -> Pipeline {
        match self.opt {
            OptLevel::Vanilla => Pipeline::new(),
            OptLevel::Devirtualize => Pipeline::new().then(pm_compile::DevirtualizePass),
            OptLevel::ConstantEmbed => Pipeline::new().then(pm_compile::ConstantEmbedPass),
            OptLevel::StaticGraph => Pipeline::new().then(pm_compile::StaticGraphPass),
            OptLevel::Reorder => Pipeline::new(),
            OptLevel::AllSource | OptLevel::Full => Pipeline::packetmill(),
        }
    }

    /// Builds the optimized IR (configuration + plan) without running —
    /// useful for inspecting the transformation log or the emitted
    /// specialized source.
    pub fn build_ir(&self) -> Result<MillIr, ExperimentError> {
        let config = ConfigGraph::parse(&self.nf.config_text())?;
        let mut ir = MillIr::new(config, self.model);
        if let Some(pm_dpdk::MempoolMode::Lifo) = self.pool_mode {
            ir.plan.lifo_packet_pool = true;
        }
        self.pipeline().run(&mut ir);
        if matches!(self.opt, OptLevel::Full | OptLevel::Reorder)
            && self.model == MetadataModel::Copying
        {
            let profile = self.collect_profile(&ir)?;
            ReorderFieldsPass::from_profile(profile).run(&mut ir);
        }
        Ok(ir)
    }

    /// Runs a short profiling pass to collect per-field access counts.
    fn collect_profile(&self, ir: &MillIr) -> Result<pm_click::FieldProfile, ExperimentError> {
        let mut engine = self.build_engine(ir, 4_096, true)?;
        engine.set_profiling(true);
        let _ = engine.run();
        Ok(engine.take_profile().unwrap_or_default())
    }

    fn engine_config(&self, ir: &MillIr, packets: usize) -> EngineConfig {
        EngineConfig {
            cores: self.cores,
            nics: self.nics,
            freq: Frequency::from_ghz(self.freq_ghz),
            rx_ring: self.rx_ring,
            tx_ring: 1024,
            burst: self.burst,
            pool_size: 0,
            model: self.model,
            spec: self.spec.clone().unwrap_or_else(MetadataSpec::routing),
            xchg_layout: (self.model == MetadataModel::XChange)
                .then(|| ir.plan.packet_layout.clone()),
            offered_gbps: self.offered_gbps,
            packets,
            warmup: (packets as f64 * self.warmup_fraction) as usize,
            base_latency: SimTime::from_us(4.0),
            ddio_ways: self.ddio_ways,
            pool_mode: self.pool_mode,
            profile: self.profile_effective(),
            faults: self.fault_plan_effective(),
            timeline: self.timeline_us_effective().map(SimTime::from_us),
            trace: self
                .packet_trace_effective()
                .then(|| pm_telemetry::TraceSpec {
                    seed: self.seed,
                    ..pm_telemetry::TraceSpec::default()
                }),
            reference_walk: self.reference_walk,
            hugepage_tables: self.hugepage_tables,
        }
    }

    /// The trace NIC `n` replays: an explicit custom trace, else frames
    /// synthesized from the effective workload (per-NIC seed split so
    /// NICs don't replay identical flows), else the stock profile.
    fn trace_for_nic(&self, n: usize, packets: usize) -> Trace {
        if let Some(t) = &self.custom_trace {
            return t.clone();
        }
        if let Some(spec) = self.workload_effective() {
            return Trace::from_workload_spec_cached(&WorkloadSpec {
                seed: spec.seed ^ (n as u64) << 32,
                ..spec
            });
        }
        Trace::synthesize_cached(&TraceConfig {
            packets: 8_192.min(packets.max(1)),
            profile: self.traffic,
            seed: self.seed ^ (n as u64) << 32,
            ..TraceConfig::default()
        })
    }

    /// The configuration as stable key/value pairs (for [`RunReport`]).
    /// Every key is always present so artifact schemas stay stable.
    fn config_entries(&self) -> Vec<(String, String)> {
        let kv: Vec<(&str, String)> = vec![
            ("nf", format!("{:?}", self.nf)),
            ("model", format!("{:?}", self.model)),
            ("opt", format!("{:?}", self.opt)),
            ("freq_ghz", format!("{}", self.freq_ghz)),
            ("cores", format!("{}", self.cores)),
            ("nics", format!("{}", self.nics)),
            ("offered_gbps", format!("{}", self.offered_gbps)),
            ("packets", format!("{}", self.packets)),
            ("traffic", format!("{:?}", self.traffic)),
            ("rx_ring", format!("{}", self.rx_ring)),
            ("burst", format!("{}", self.burst)),
            ("ddio_ways", format!("{:?}", self.ddio_ways)),
            ("pool_mode", format!("{:?}", self.pool_mode)),
        ];
        kv.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }

    fn build_engine(
        &self,
        ir: &MillIr,
        packets: usize,
        for_profiling: bool,
    ) -> Result<Engine, ExperimentError> {
        let mut cfg = self.engine_config(ir, packets);
        if for_profiling {
            // The field-access profiling pre-run is internal plumbing for
            // the reordering pass, not a reported run — and the resulting
            // layout must not depend on any fault plan.
            cfg.warmup = 0;
            cfg.profile = false;
            cfg.faults = None;
            cfg.timeline = None;
            cfg.trace = None;
        }
        let qpn = Engine::queues_per_nic(&cfg);
        let registry = standard_registry();
        let mut space = AddressSpace::new();

        let mut dataplanes: Vec<Box<dyn Dataplane>> = Vec::new();
        for nic in 0..self.nics {
            for _q in 0..qpn {
                let graph = Graph::build(&ir.config, &registry)?;
                let mut rt = GraphRuntime::new(graph, ir.plan.clone(), &mut space);
                if let Some(plan) = &cfg.faults {
                    rt.set_fault_slowdowns(plan);
                }
                // Multi-source configs map source ordinal to the NIC; the
                // presets have one source, shared across NICs.
                let n_sources = rt.graph.sources.len();
                let ordinal = if n_sources > 1 { nic % n_sources } else { 0 };
                dataplanes.push(Box::new(ClickDataplane::new(
                    rt,
                    ordinal,
                    format!("FastClick ({})", ir.plan.label()),
                )));
            }
        }

        let traces: Vec<Trace> = (0..self.nics)
            .map(|n| self.trace_for_nic(n, packets))
            .collect();

        Ok(Engine::new(cfg, dataplanes, traces, &mut space))
    }

    /// Runs the experiment with the FastClick dataplane under the
    /// configured optimization level and metadata model.
    pub fn run(&self) -> Result<Measurement, ExperimentError> {
        Ok(self.run_with_handlers()?.0)
    }

    /// Like [`Self::run`], also returning the per-element
    /// `(name, packets, drops)` statistics (Click read handlers).
    pub fn run_with_handlers(&self) -> Result<(Measurement, ElementStats), ExperimentError> {
        let ir = self.build_ir()?;
        let mut engine = self.build_engine(&ir, self.packets, false)?;
        let m = engine.run();
        Ok((m, engine.element_stats()))
    }

    /// Like [`Self::run`], also returning the structured [`RunReport`]
    /// artifact (configuration + seed + measurement + per-element
    /// profile when [`Self::profile_effective`] is on).
    pub fn run_with_report(&self) -> Result<(Measurement, RunReport), ExperimentError> {
        let ir = self.build_ir()?;
        let mut engine = self.build_engine(&ir, self.packets, false)?;
        let m = engine.run();
        let report = RunReport {
            label: format!("{:?} [{}]", self.nf, ir.plan.label()),
            config: self.config_entries(),
            seed: self.seed,
            measurement: m,
            profile: engine.profile_report(),
            // Per-queue sections only for multi-core runs: single-core
            // artifacts stay byte-identical to the golden fixtures.
            cores: if self.cores > 1 {
                engine.queue_ledgers().map(<[_]>::to_vec)
            } else {
                None
            },
            faults: engine.fault_plan().map(|p| crate::report::FaultReport {
                spec: p.to_spec(),
                ledger: engine.ledger().unwrap_or_default(),
            }),
            workload: self.workload_effective().map(|spec| {
                let w = Workload::new(spec.clone());
                // Stats cover one trace cycle of the base (NIC-0) spec;
                // the engine replays the cycle until `packets` is met.
                let frames = w.frames() as u64;
                crate::report::WorkloadReport {
                    spec: spec.to_spec(),
                    hugepage_tables: self.hugepage_tables,
                    frames,
                    stats: w.stats(frames),
                    tables: engine.table_stats(),
                }
            }),
            timeline: engine.take_timeline(),
            trace: engine.take_trace(),
        };
        Ok((m, report))
    }

    /// Runs the experiment with an arbitrary dataplane factory instead of
    /// FastClick (for the framework comparison of Fig. 11). The factory
    /// is called once per (nic, queue) pair; the metadata model comes
    /// from the dataplane itself.
    pub fn run_with_dataplane<F>(&self, factory: F) -> Result<Measurement, ExperimentError>
    where
        F: Fn() -> Box<dyn Dataplane>,
    {
        let ir = self.build_ir()?;
        let mut cfg = self.engine_config(&ir, self.packets);
        let qpn = Engine::queues_per_nic(&cfg);
        let probe = factory();
        cfg.model = probe.metadata_model();
        cfg.spec = MetadataSpec::minimal();
        cfg.xchg_layout = None;
        drop(probe);

        let mut space = AddressSpace::new();
        let dataplanes: Vec<Box<dyn Dataplane>> = (0..self.nics * qpn).map(|_| factory()).collect();
        let traces: Vec<Trace> = (0..self.nics)
            .map(|n| self.trace_for_nic(n, self.packets))
            .collect();
        let mut engine = Engine::new(cfg, dataplanes, traces, &mut space);
        Ok(engine.run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nf_presets_have_configs() {
        for nf in [
            Nf::Forwarder,
            Nf::Router,
            Nf::IdsRouter,
            Nf::Nat,
            Nf::Firewall,
        ] {
            let text = nf.config_text();
            assert!(text.contains("FromDPDKDevice"), "{nf:?}");
            assert!(ConfigGraph::parse(&text).is_ok(), "{nf:?} parses");
        }
        let wp = Nf::WorkPackage {
            w: 2,
            s_mb: 4,
            n: 1,
        }
        .config_text();
        assert!(wp.contains("WorkPackage(W 2, S 4, N 1)"));
    }

    #[test]
    fn custom_config_round_trips() {
        let custom = Nf::Custom("a :: FromDPDKDevice(0); a -> Discard;".into());
        assert_eq!(
            custom.config_text(),
            "a :: FromDPDKDevice(0); a -> Discard;"
        );
    }

    #[test]
    fn bad_custom_config_is_reported() {
        let err = ExperimentBuilder::new(Nf::Custom("x -> ;".into()))
            .build_ir()
            .unwrap_err();
        assert!(matches!(err, ExperimentError::Config(_)));
        assert!(err.to_string().contains("configuration error"));
    }

    #[test]
    fn unknown_element_class_is_reported() {
        let err = ExperimentBuilder::new(Nf::Custom(
            "a :: FromDPDKDevice(0); a -> NoSuchElement -> Discard;".into(),
        ))
        .packets(64)
        .run()
        .unwrap_err();
        assert!(err.to_string().contains("unknown element class"));
    }

    #[test]
    fn pipeline_matches_opt_level() {
        let b = ExperimentBuilder::new(Nf::Forwarder);
        assert!(b
            .clone()
            .optimization(OptLevel::Vanilla)
            .pipeline()
            .is_empty());
        assert_eq!(
            b.clone()
                .optimization(OptLevel::Devirtualize)
                .pipeline()
                .len(),
            1
        );
        assert_eq!(
            b.clone().optimization(OptLevel::AllSource).pipeline().len(),
            4
        );
        assert_eq!(b.optimization(OptLevel::Full).pipeline().len(), 4);
    }

    #[test]
    fn build_ir_applies_passes() {
        let ir = ExperimentBuilder::new(Nf::Router)
            .optimization(OptLevel::AllSource)
            .build_ir()
            .expect("ir");
        assert!(ir.plan.static_graph);
        assert!(ir.plan.constants_embedded);
        assert!(!ir.log.is_empty());
    }

    #[test]
    fn reorder_skipped_for_non_copying() {
        // Profile-guided reordering applies only under Copying (like the
        // paper's pass); XChange keeps the default layout.
        let ir = ExperimentBuilder::new(Nf::Router)
            .metadata_model(MetadataModel::XChange)
            .optimization(OptLevel::Full)
            .packets(2_048)
            .build_ir()
            .expect("ir");
        assert_eq!(
            ir.plan.packet_layout,
            pm_click::default_packet_layout(),
            "layout untouched for X-Change"
        );
    }
}
