//! Structured run artifacts: everything one experiment produced —
//! configuration, seed, measurement, optional per-element profile — in a
//! stable, hand-serialized JSON shape (`packetmill-run-report/v1`).
//!
//! The artifact deliberately carries **no wall-clock or host timing**:
//! every field is a function of the simulation alone, so the same sweep
//! serializes byte-identically regardless of worker count or machine.

use crate::engine::{Measurement, QueueLedger};
use pm_sim::Ledger;
use pm_telemetry::{Json, ProfileReport, TimelineReport, TraceReport};

/// Schema identifier stamped into every sweep artifact.
pub const SCHEMA: &str = "packetmill-run-report/v1";

/// Fault-injection outcome of one run: the plan that was active (in
/// canonical `--faults` spec form) and the packet-conservation ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// The active plan, [`pm_sim::FaultPlan::to_spec`] form.
    pub spec: String,
    /// The whole-run conservation account (always balanced — the engine
    /// asserts it).
    pub ledger: Ledger,
}

impl FaultReport {
    /// Serializes with fixed key order.
    pub fn to_json(&self) -> Json {
        let l = &self.ledger;
        Json::obj(vec![
            ("spec", Json::Str(self.spec.clone())),
            ("generated", Json::U64(l.generated)),
            ("tx_sent", Json::U64(l.tx_sent)),
            ("fcs_dropped", Json::U64(l.fcs_dropped)),
            ("link_down_dropped", Json::U64(l.link_down_dropped)),
            ("desc_dropped", Json::U64(l.desc_dropped)),
            ("rx_ring_dropped", Json::U64(l.rx_ring_dropped)),
            ("nf_dropped", Json::U64(l.nf_dropped)),
            ("tx_ring_dropped", Json::U64(l.tx_ring_dropped)),
            ("truncated_delivered", Json::U64(l.truncated_delivered)),
            ("pool_denials", Json::U64(l.pool_denials)),
            ("balanced", Json::Bool(l.balances())),
        ])
    }
}

/// Flow-population outcome of one run driven by a workload spec: the
/// canonical spec, per-trace-cycle churn accounting, and the
/// element-table occupancy/policy counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadReport {
    /// The active workload, [`pm_traffic::WorkloadSpec::to_spec`] form.
    pub spec: String,
    /// Whether element tables were backed by hugepages.
    pub hugepage_tables: bool,
    /// Distinct frames in one trace cycle.
    pub frames: u64,
    /// Churn/mix accounting over one trace cycle.
    pub stats: pm_traffic::WorkloadStats,
    /// Per-table counters, aggregated across queues by element name.
    pub tables: Vec<pm_click::TableStats>,
}

/// Serializes one table's counters with fixed key order.
fn table_stats_to_json(t: &pm_click::TableStats) -> Json {
    Json::obj(vec![
        ("name", Json::Str(t.name.clone())),
        ("kind", Json::Str(t.kind.to_string())),
        ("capacity", Json::U64(t.capacity)),
        ("occupancy", Json::U64(t.occupancy)),
        ("lookups", Json::U64(t.lookups)),
        ("hits", Json::U64(t.hits)),
        ("insertions", Json::U64(t.insertions)),
        ("expiries", Json::U64(t.expiries)),
        ("evictions", Json::U64(t.evictions)),
        ("displacements", Json::U64(t.displacements)),
        ("max_chain", Json::U64(t.max_chain)),
    ])
}

impl WorkloadReport {
    /// Serializes with fixed key order.
    pub fn to_json(&self) -> Json {
        let s = &self.stats;
        Json::obj(vec![
            ("spec", Json::Str(self.spec.clone())),
            ("hugepage_tables", Json::Bool(self.hugepage_tables)),
            ("frames", Json::U64(self.frames)),
            ("arrivals", Json::U64(s.arrivals)),
            ("expiries", Json::U64(s.expiries)),
            ("live", Json::U64(s.live)),
            ("normal_frames", Json::U64(s.normal_frames)),
            ("syn_frames", Json::U64(s.syn_frames)),
            ("scan_frames", Json::U64(s.scan_frames)),
            ("conserves", Json::Bool(s.conserves())),
            (
                "tables",
                Json::Arr(self.tables.iter().map(table_stats_to_json).collect()),
            ),
        ])
    }
}

/// The structured artifact of one experiment run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Human-readable run label (the sweep label when run via a sweep).
    pub label: String,
    /// The experiment configuration as stable key/value pairs.
    pub config: Vec<(String, String)>,
    /// RNG seed the run used.
    pub seed: u64,
    /// The run's measurements.
    pub measurement: Measurement,
    /// Per-element profile, when the run was profiled.
    pub profile: Option<ProfileReport>,
    /// Per-(nic, queue) conservation sections, when the run used more
    /// than one core. `None` omits the key entirely, keeping single-core
    /// artifacts byte-identical to the pre-multicore golden fixtures.
    pub cores: Option<Vec<QueueLedger>>,
    /// Fault counters, when a non-empty fault plan was active. `None`
    /// omits the key entirely, keeping unfaulted artifacts byte-identical
    /// to the pre-fault-subsystem golden fixtures.
    pub faults: Option<FaultReport>,
    /// Flow-population accounting, when the run was driven by a
    /// `--workload` spec. `None` omits the key, keeping workload-less
    /// artifacts byte-identical to the pre-workload golden fixtures.
    pub workload: Option<WorkloadReport>,
    /// Flight-recorder time series, when the run recorded a timeline.
    /// `None` omits the key, keeping recorder-off artifacts byte-identical
    /// to the pre-recorder golden fixtures.
    pub timeline: Option<TimelineReport>,
    /// Sampled packet lifecycle traces, when the run recorded them.
    /// `None` omits the key, like `timeline`.
    pub trace: Option<TraceReport>,
}

/// Serializes one per-queue ledger with fixed key order.
fn queue_ledger_to_json(q: &QueueLedger) -> Json {
    Json::obj(vec![
        ("core", Json::U64(q.core as u64)),
        ("nic", Json::U64(q.nic as u64)),
        ("queue", Json::U64(q.queue as u64)),
        ("delivered", Json::U64(q.delivered)),
        ("rx_ring_dropped", Json::U64(q.rx_ring_dropped)),
        ("nf_dropped", Json::U64(q.nf_dropped)),
        ("tx_ring_dropped", Json::U64(q.tx_ring_dropped)),
        ("tx_sent", Json::U64(q.tx_sent)),
        ("balanced", Json::Bool(q.balances())),
    ])
}

impl RunReport {
    /// Serializes the report. Key order is fixed, so equal runs produce
    /// byte-identical JSON.
    pub fn to_json(&self) -> Json {
        let mut keys = vec![
            ("label", Json::Str(self.label.clone())),
            ("seed", Json::U64(self.seed)),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            ("measurement", measurement_to_json(&self.measurement)),
            (
                "profile",
                match &self.profile {
                    Some(p) => p.to_json(),
                    None => Json::Null,
                },
            ),
        ];
        // Emitted only for multi-core runs: single-core artifacts must
        // stay byte-identical to the committed golden fixtures.
        if let Some(cores) = &self.cores {
            keys.push((
                "cores",
                Json::Arr(cores.iter().map(queue_ledger_to_json).collect()),
            ));
        }
        // Emitted only when a plan was active: unfaulted artifacts must
        // stay byte-identical to the committed golden fixtures.
        if let Some(f) = &self.faults {
            keys.push(("faults", f.to_json()));
        }
        // Emitted only for workload-driven runs: workload-less artifacts
        // must stay byte-identical to the committed golden fixtures.
        if let Some(w) = &self.workload {
            keys.push(("workload", w.to_json()));
        }
        // Emitted only when the flight recorder ran: recorder-off
        // artifacts must stay byte-identical to the committed goldens.
        if let Some(t) = &self.timeline {
            keys.push(("timeline", t.to_json()));
        }
        if let Some(t) = &self.trace {
            keys.push(("trace", t.to_json()));
        }
        Json::obj(keys)
    }
}

/// Serializes a [`Measurement`] with one key per field.
pub fn measurement_to_json(m: &Measurement) -> Json {
    Json::obj(vec![
        ("throughput_gbps", Json::F64(m.throughput_gbps)),
        ("mpps", Json::F64(m.mpps)),
        ("median_latency_us", Json::F64(m.median_latency_us)),
        ("p99_latency_us", Json::F64(m.p99_latency_us)),
        ("mean_latency_us", Json::F64(m.mean_latency_us)),
        ("ipc", Json::F64(m.ipc)),
        ("llc_loads_per_100ms", Json::F64(m.llc_loads_per_100ms)),
        ("llc_misses_per_100ms", Json::F64(m.llc_misses_per_100ms)),
        ("llc_miss_pct", Json::F64(m.llc_miss_pct)),
        ("rx_dropped", Json::U64(m.rx_dropped)),
        ("nf_dropped", Json::U64(m.nf_dropped)),
        ("tx_dropped", Json::U64(m.tx_dropped)),
        ("tx_packets", Json::U64(m.tx_packets)),
        ("elapsed_ms", Json::F64(m.elapsed_ms)),
        ("instr_per_packet", Json::F64(m.instr_per_packet)),
        ("cycles_per_packet", Json::F64(m.cycles_per_packet)),
        ("uncore_ns_per_packet", Json::F64(m.uncore_ns_per_packet)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement() -> Measurement {
        Measurement {
            throughput_gbps: 42.5,
            mpps: 7.0,
            median_latency_us: 5.0,
            p99_latency_us: 9.0,
            mean_latency_us: 6.0,
            ipc: 2.5,
            llc_loads_per_100ms: 1000.0,
            llc_misses_per_100ms: 10.0,
            llc_miss_pct: 1.0,
            rx_dropped: 0,
            nf_dropped: 3,
            tx_dropped: 0,
            tx_packets: 80_000,
            elapsed_ms: 1.5,
            instr_per_packet: 500.0,
            cycles_per_packet: 150.0,
            uncore_ns_per_packet: 20.0,
        }
    }

    #[test]
    fn report_round_trips_through_parser() {
        let r = RunReport {
            label: "router/copying".into(),
            config: vec![("nf".into(), "Router".into())],
            seed: 0xCAFE,
            measurement: measurement(),
            profile: None,
            cores: None,
            faults: None,
            workload: None,
            timeline: None,
            trace: None,
        };
        let text = r.to_json().to_compact();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("label"),
            Some(&Json::Str("router/copying".into()))
        );
        assert_eq!(parsed.get("seed"), Some(&Json::U64(0xCAFE)));
        assert_eq!(parsed.get("profile"), Some(&Json::Null));
        let m = parsed.get("measurement").expect("measurement");
        assert_eq!(m.get("throughput_gbps").unwrap().as_f64(), Some(42.5));
        assert_eq!(m.get("tx_packets"), Some(&Json::U64(80_000)));
    }

    #[test]
    fn serialization_is_deterministic() {
        let r = RunReport {
            label: "x".into(),
            config: vec![("a".into(), "1".into()), ("b".into(), "2".into())],
            seed: 1,
            measurement: measurement(),
            profile: Some(ProfileReport::default()),
            cores: None,
            faults: None,
            workload: None,
            timeline: None,
            trace: None,
        };
        assert_eq!(r.to_json().to_compact(), r.to_json().to_compact());
    }

    #[test]
    fn cores_key_only_present_for_multicore_runs() {
        let mut r = RunReport {
            label: "x".into(),
            config: Vec::new(),
            seed: 1,
            measurement: measurement(),
            profile: None,
            cores: None,
            faults: None,
            workload: None,
            timeline: None,
            trace: None,
        };
        assert_eq!(r.to_json().get("cores"), None, "single core, no key");

        r.cores = Some(vec![QueueLedger {
            core: 1,
            nic: 0,
            queue: 1,
            delivered: 10,
            rx_ring_dropped: 2,
            nf_dropped: 1,
            tx_ring_dropped: 0,
            tx_sent: 9,
        }]);
        let text = r.to_json().to_compact();
        let parsed = Json::parse(&text).expect("valid JSON");
        let Some(Json::Arr(sections)) = parsed.get("cores") else {
            panic!("cores key must be an array");
        };
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].get("core"), Some(&Json::U64(1)));
        assert_eq!(sections[0].get("delivered"), Some(&Json::U64(10)));
        assert_eq!(sections[0].get("balanced"), Some(&Json::Bool(true)));
    }

    #[test]
    fn workload_key_only_present_when_workload_driven() {
        let mut r = RunReport {
            label: "x".into(),
            config: Vec::new(),
            seed: 1,
            measurement: measurement(),
            profile: None,
            cores: None,
            faults: None,
            workload: None,
            timeline: None,
            trace: None,
        };
        assert_eq!(r.to_json().get("workload"), None, "no workload, no key");

        r.workload = Some(WorkloadReport {
            spec: "seed=0xF10E5;flows=4096;zipf=0.8;life=0;frames=0;size=campus".into(),
            hugepage_tables: true,
            frames: 4096,
            stats: pm_traffic::WorkloadStats {
                arrivals: 4096,
                expiries: 0,
                live: 4096,
                normal_frames: 4000,
                syn_frames: 96,
                scan_frames: 0,
            },
            tables: vec![pm_click::TableStats {
                name: "IPRewriter".into(),
                kind: "cuckoo",
                capacity: 65536,
                occupancy: 4096,
                lookups: 4096,
                hits: 0,
                insertions: 4096,
                expiries: 0,
                evictions: 0,
                displacements: 7,
                max_chain: 2,
            }],
        });
        let text = r.to_json().to_compact();
        let parsed = Json::parse(&text).expect("valid JSON");
        let w = parsed.get("workload").expect("workload key");
        assert_eq!(w.get("conserves"), Some(&Json::Bool(true)));
        assert_eq!(w.get("hugepage_tables"), Some(&Json::Bool(true)));
        let Some(Json::Arr(tables)) = w.get("tables") else {
            panic!("tables must be an array");
        };
        assert_eq!(tables[0].get("kind"), Some(&Json::Str("cuckoo".into())));
        assert_eq!(tables[0].get("occupancy"), Some(&Json::U64(4096)));
    }

    #[test]
    fn faults_key_only_present_when_faulted() {
        let mut r = RunReport {
            label: "x".into(),
            config: Vec::new(),
            seed: 1,
            measurement: measurement(),
            profile: None,
            cores: None,
            faults: None,
            workload: None,
            timeline: None,
            trace: None,
        };
        let clean = r.to_json();
        assert_eq!(clean.get("faults"), None, "no plan, no key");

        r.faults = Some(FaultReport {
            spec: "seed=7;bitflip@..:rate=1000ppm".into(),
            ledger: Ledger {
                generated: 10,
                fcs_dropped: 2,
                tx_sent: 8,
                ..Ledger::default()
            },
        });
        let text = r.to_json().to_compact();
        let parsed = Json::parse(&text).expect("valid JSON");
        let f = parsed.get("faults").expect("faults key");
        assert_eq!(f.get("fcs_dropped"), Some(&Json::U64(2)));
        assert_eq!(f.get("balanced"), Some(&Json::Bool(true)));
        assert_eq!(
            f.get("spec"),
            Some(&Json::Str("seed=7;bitflip@..:rate=1000ppm".into()))
        );
    }
}
