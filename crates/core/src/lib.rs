//! # PacketMill-rs
//!
//! A from-scratch Rust reproduction of *PacketMill: Toward Per-Core
//! 100-Gbps Networking* (ASPLOS '21): the X-Change metadata-management
//! model, the configuration-driven code-optimization pipeline
//! (devirtualization, constant embedding, static graph, profile-guided
//! struct reordering), a FastClick-like modular framework, and the
//! simulated 100-Gbps testbed (NIC + DMA/DDIO + cache hierarchy) the
//! evaluation runs on.
//!
//! # Quickstart
//!
//! ```
//! use packetmill::{ExperimentBuilder, MetadataModel, Nf, OptLevel};
//!
//! let vanilla = ExperimentBuilder::new(Nf::Forwarder)
//!     .metadata_model(MetadataModel::Copying)
//!     .optimization(OptLevel::Vanilla)
//!     .frequency_ghz(2.3)
//!     .packets(20_000)
//!     .run()
//!     .unwrap();
//!
//! let packetmill = ExperimentBuilder::new(Nf::Forwarder)
//!     .metadata_model(MetadataModel::XChange)
//!     .optimization(OptLevel::AllSource)
//!     .frequency_ghz(2.3)
//!     .packets(20_000)
//!     .run()
//!     .unwrap();
//!
//! assert!(packetmill.throughput_gbps > vanilla.throughput_gbps);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod click_dataplane;
pub mod engine;
pub mod experiment;
pub mod report;
pub mod sweep;

pub use click_dataplane::ClickDataplane;
pub use engine::{Engine, EngineConfig, Measurement, QueueLedger};
pub use experiment::{ExperimentBuilder, ExperimentError, Nf, OptLevel};
pub use report::{FaultReport, RunReport};
pub use sweep::{RunOutcome, SweepCli, SweepReport, SweepResults, SweepSpec};

// Re-exports so examples and tests need only this crate.
pub use pm_click::TableStats;
pub use pm_click::{ConfigGraph, DispatchMode, ExecPlan, Graph};
pub use pm_compile::{emit_specialized_source, MillIr, Pipeline, ReorderFieldsPass};
pub use pm_dpdk::{MempoolMode, MetaField, MetadataModel, MetadataSpec};
pub use pm_elements::{configs, standard_registry};
pub use pm_frameworks::{BessEngine, Dataplane, L2Fwd, VppEngine};
pub use pm_sim::{fault::FaultKind, DropCause, FaultPlan, Frequency, Ledger, SimTime, WireFault};
pub use pm_telemetry::{
    chrome_trace, Json, ProfileReport, Table, TimelineReport, TraceReport, TraceSpec,
};
pub use pm_traffic::{
    AttackEvent, AttackKind, SizeModel, Trace, TraceConfig, TrafficProfile, Workload, WorkloadSpec,
    WorkloadSpecError, WorkloadStats,
};
pub use report::WorkloadReport;
