//! The closed-loop experiment engine: traffic generator → NIC (DMA/DDIO,
//! rings, RSS) → poll-mode driver → dataplane → TX — with per-core clocks
//! advanced by the charged costs, producing the metrics the paper
//! reports.
//!
//! The simulation is event-driven in a single loop: the core with the
//! earliest clock runs next; before it polls, every generator arrival up
//! to that instant is delivered (possibly dropping on full rings — the
//! mechanism behind the tail-latency knee of Fig. 1).

use pm_dpdk::{MetadataModel, MetadataSpec, Pmd, PmdConfig, TxSend};
use pm_frameworks::Dataplane;
use pm_mem::{AddressSpace, Cost, MemCounters, MemoryHierarchy, SCOPE_SCHEDULER};
use pm_nic::{DmaMemory, Nic, NicConfig};
use pm_sim::{DropCause, FaultPlan, Frequency, Ledger, SimTime};
use pm_telemetry::{
    LatencyHistogram, ProfileRecord, ProfileReport, TimelineRecorder, TimelineReport,
    TraceRecorder, TraceReport, TraceSpec,
};
use pm_traffic::Trace;
use std::collections::BTreeMap;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Processing cores.
    pub cores: usize,
    /// NIC ports (1, or 2 for the dual-NIC experiment of Fig. 5b).
    pub nics: usize,
    /// Core clock frequency.
    pub freq: Frequency,
    /// RX descriptor ring size.
    pub rx_ring: usize,
    /// TX descriptor ring size.
    pub tx_ring: usize,
    /// RX/TX burst size.
    pub burst: usize,
    /// Extra data buffers beyond the computed minimum (rings + in-flight).
    /// 0 sizes the pool exactly to the rings, like a tuned deployment.
    pub pool_size: u32,
    /// Metadata-management model the PMD runs.
    pub model: MetadataModel,
    /// Fields the NF needs (X-Change write set).
    pub spec: MetadataSpec,
    /// Application descriptor layout for X-Change (the framework's
    /// `Packet` layout), if any.
    pub xchg_layout: Option<pm_dpdk::StructLayout>,
    /// Offered load per NIC, Gbps.
    pub offered_gbps: f64,
    /// Packets to generate per NIC.
    pub packets: usize,
    /// Packets (per NIC) excluded from measurement as warm-up.
    pub warmup: usize,
    /// Fixed latency outside the DUT (generator + PHYs + cabling).
    pub base_latency: SimTime,
    /// Override the number of LLC ways DDIO may fill (None = default 4).
    pub ddio_ways: Option<usize>,
    /// Override the mempool recycling order (None = FIFO).
    pub pool_mode: Option<pm_dpdk::MempoolMode>,
    /// Attribute every charged cost and cache event to the executing
    /// element/stage and collect a per-element [`ProfileReport`].
    pub profile: bool,
    /// Deterministic fault plan, if any. `None` (and an empty plan,
    /// which callers normalize to `None`) leaves every path untouched —
    /// the zero-cost invariant the golden fixtures enforce.
    pub faults: Option<FaultPlan>,
    /// Flight-recorder time-series window (virtual time), if any.
    /// Recording is measurement-neutral: it reads engine state, charges
    /// no cost, and performs no simulated memory accesses.
    pub timeline: Option<SimTime>,
    /// Sampled per-packet lifecycle tracing, if any. The sample set is a
    /// pure function of `(spec.seed, nic, seq)` — independent of thread
    /// count and of the timeline window.
    pub trace: Option<TraceSpec>,
    /// Resolve every access program through the reference per-line walk
    /// (no signature memoization, no batch replay, no fast-forward).
    /// Bit-identical to the default fast resolver by construction — the
    /// regression tests run both and assert byte-equal artifacts.
    pub reference_walk: bool,
    /// Back element-owned lookup tables (flow tables, route tries)
    /// with 2-MiB hugepages, like DPDK's `rte_hash` on hugepage
    /// memory. Off by default: the 4-KiB baseline is what the
    /// flow-scale sweep compares against.
    pub hugepage_tables: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cores: 1,
            nics: 1,
            freq: Frequency::from_ghz(2.3),
            rx_ring: 4096,
            tx_ring: 1024,
            burst: 32,
            pool_size: 0,
            model: MetadataModel::Copying,
            spec: MetadataSpec::full(),
            xchg_layout: None,
            offered_gbps: 100.0,
            packets: 100_000,
            warmup: 20_000,
            base_latency: SimTime::from_us(4.0),
            ddio_ways: None,
            pool_mode: None,
            profile: false,
            faults: None,
            timeline: None,
            trace: None,
            reference_walk: false,
            hugepage_tables: false,
        }
    }
}

/// The metrics one experiment run produces (the paper's measurement set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Delivered throughput, Gbps (frame bytes on the TX side).
    pub throughput_gbps: f64,
    /// Delivered packets per second, millions.
    pub mpps: f64,
    /// Median end-to-end latency, µs.
    pub median_latency_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_latency_us: f64,
    /// Mean latency, µs.
    pub mean_latency_us: f64,
    /// Instructions per cycle over the measured window.
    pub ipc: f64,
    /// `LLC-loads` per 100 ms (the paper's Table 1 unit).
    pub llc_loads_per_100ms: f64,
    /// `LLC-load-misses` per 100 ms.
    pub llc_misses_per_100ms: f64,
    /// LLC load-miss ratio, percent.
    pub llc_miss_pct: f64,
    /// Packets dropped by the NIC (ring overflow), whole run.
    pub rx_dropped: u64,
    /// Packets the NF dropped, whole run.
    pub nf_dropped: u64,
    /// Frames dropped at the TX ring, whole run.
    pub tx_dropped: u64,
    /// Packets transmitted in the measured window.
    pub tx_packets: u64,
    /// Simulated measured time, ms.
    pub elapsed_ms: f64,
    /// Mean retired instructions per processed packet.
    pub instr_per_packet: f64,
    /// Mean core-domain cycles per processed packet.
    pub cycles_per_packet: f64,
    /// Mean uncore stall per processed packet, ns.
    pub uncore_ns_per_packet: f64,
}

/// Per-queue packet conservation for one (nic, queue) pair and the core
/// it is pinned to. Frames rejected before RSS steering (FCS errors,
/// link-down losses, descriptor drops) have no queue and appear only in
/// the aggregate [`Ledger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLedger {
    /// Core this queue pair is pinned to.
    pub core: usize,
    /// NIC port index.
    pub nic: usize,
    /// Queue index on that port.
    pub queue: usize,
    /// Frames DMA'd into this queue's completion ring.
    pub delivered: u64,
    /// Frames steered here but dropped for lack of a posted buffer
    /// (informational: they never became `delivered`).
    pub rx_ring_dropped: u64,
    /// Delivered frames the NF dropped.
    pub nf_dropped: u64,
    /// Delivered frames dropped at this queue's full TX ring.
    pub tx_ring_dropped: u64,
    /// Delivered frames serialized onto the wire.
    pub tx_sent: u64,
}

impl QueueLedger {
    /// Every delivered frame ends as exactly one of: NF drop, TX-ring
    /// drop, or transmission.
    pub fn balances(&self) -> bool {
        self.delivered == self.nf_dropped + self.tx_ring_dropped + self.tx_sent
    }
}

struct NicState {
    dev: Nic,
    dma: DmaMemory,
    pmd: Pmd,
    /// Replay cursor.
    next_idx: usize,
    next_time: SimTime,
    /// Per-trace-frame RSS hash, computed once: the trace replays
    /// cyclically, so hashing each distinct frame at startup replaces
    /// a Toeplitz evaluation per delivered packet.
    frame_hashes: Vec<u32>,
}

/// The closed-loop engine.
pub struct Engine {
    cfg: EngineConfig,
    mem: MemoryHierarchy,
    nics: Vec<NicState>,
    /// One dataplane instance per (nic, queue) pair.
    dataplanes: Vec<Box<dyn Dataplane>>,
    /// `(nic, queue)` per pair index.
    pairs: Vec<(usize, usize)>,
    traces: Vec<Trace>,
    /// Generation timestamp of the first post-warmup packet.
    measure_gen_start: Option<SimTime>,
    /// RX batch-size histogram over the measured window (profiled runs).
    batches: BTreeMap<u64, u64>,
    /// Packet-conservation ledger, filled in by [`Engine::run`].
    ledger: Option<Ledger>,
    /// Per-(nic, queue) conservation ledgers, filled in by [`Engine::run`].
    queue_ledgers: Option<Vec<QueueLedger>>,
    /// Flight-recorder time series, live while [`Engine::run`] runs.
    timeline: Option<TimelineRecorder>,
    /// Sampled lifecycle traces, live while [`Engine::run`] runs.
    trace: Option<TraceRecorder>,
    /// Finished timeline, filled in by [`Engine::run`].
    timeline_report: Option<TimelineReport>,
    /// Finished lifecycle traces, filled in by [`Engine::run`].
    trace_report: Option<TraceReport>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cores", &self.cfg.cores)
            .field("nics", &self.nics.len())
            .field("pairs", &self.pairs)
            .finish()
    }
}

impl Engine {
    /// Queues per NIC implied by a configuration.
    pub fn queues_per_nic(cfg: &EngineConfig) -> usize {
        (cfg.cores / cfg.nics).max(1)
    }

    /// Builds the engine. `dataplanes` must hold one instance per
    /// (nic, queue) pair — `nics * queues_per_nic` — and `traces` one
    /// trace per NIC.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent dimensions.
    pub fn new(
        cfg: EngineConfig,
        mut dataplanes: Vec<Box<dyn Dataplane>>,
        traces: Vec<Trace>,
        space: &mut AddressSpace,
    ) -> Self {
        assert!(cfg.cores > 0 && cfg.nics > 0, "need cores and nics");
        let qpn = Self::queues_per_nic(&cfg);
        let pairs: Vec<(usize, usize)> = (0..cfg.nics)
            .flat_map(|n| (0..qpn).map(move |q| (n, q)))
            .collect();
        assert_eq!(
            dataplanes.len(),
            pairs.len(),
            "need one dataplane per (nic, queue) pair"
        );
        assert_eq!(traces.len(), cfg.nics, "need one trace per NIC");

        let mut hier_params = pm_mem::HierarchyParams::skylake(cfg.cores);
        if let Some(w) = cfg.ddio_ways {
            hier_params.ddio_ways = w;
        }
        let mut mem = if cfg.reference_walk {
            MemoryHierarchy::with_reference_walk(&hier_params)
        } else {
            MemoryHierarchy::new(&hier_params)
        };
        let nic_cfg = NicConfig {
            queues: qpn,
            rx_ring_size: cfg.rx_ring,
            tx_ring_size: cfg.tx_ring,
            ..NicConfig::default()
        };
        let nics: Vec<NicState> = (0..cfg.nics)
            .map(|n| {
                let mut dev = Nic::new(&nic_cfg, space);
                // Pool covers posted descriptors + TX in-flight + bursts
                // per queue (DPDK pools are sized to the rings; oversizing
                // inflates the DMA working set past the DDIO ways for no
                // benefit). At qpn == 1 this matches the single-core pool
                // exactly.
                let n_bufs =
                    (((cfg.rx_ring + cfg.tx_ring + 4 * cfg.burst) * qpn) as u32) + cfg.pool_size;
                let dma = DmaMemory::new(space, n_bufs, 2176, 128);
                let pmd_cfg = PmdConfig {
                    burst: cfg.burst,
                    model: cfg.model,
                    spec: cfg.spec.clone(),
                    pool_size: n_bufs,
                    queues: qpn,
                    cores: cfg.cores,
                    // Per-core mempool caches only help (and only exist)
                    // when cores contend on the shared ring; keeping them
                    // off at cores == 1 pins the single-core layout the
                    // golden fixtures cover.
                    pool_cache: if cfg.cores > 1 { 256 } else { 0 },
                    xchg_layout: cfg.xchg_layout.clone(),
                    pool_mode: cfg.pool_mode.unwrap_or(pm_dpdk::MempoolMode::Fifo),
                    ..PmdConfig::default()
                };
                let mut pmd = Pmd::new(pmd_cfg, space);
                for q in 0..qpn {
                    // Queue q is pinned to the core that owns pair
                    // (n, q); its setup must warm that core's caches,
                    // not core 0's.
                    let owner = (n * qpn + q) % cfg.cores;
                    pmd.setup(owner, &mut dev, q, &dma, &mut mem);
                }
                // DPDK backs its memory with 2-MiB hugepages.
                mem.mark_hugepages(dma.region());
                for r in pmd.hugepage_regions() {
                    mem.mark_hugepages(r);
                }
                for q in 0..qpn {
                    let (cq, wq) = dev.rx_ring_mut(q).regions();
                    mem.mark_hugepages(cq);
                    mem.mark_hugepages(wq);
                    let txr = dev.tx_ring_mut(q).region();
                    mem.mark_hugepages(txr);
                }
                let frame_hashes = (0..traces[n].len())
                    .map(|i| dev.rss_hash(traces[n].frame(i)))
                    .collect();
                if let Some(plan) = cfg.faults.as_ref().filter(|p| !p.is_empty()) {
                    dev.set_link_flaps(plan.link_down_windows());
                    pmd.set_pool_denial_windows(plan.pool_exhaust_windows());
                }
                NicState {
                    dev,
                    dma,
                    pmd,
                    next_idx: 0,
                    next_time: SimTime::ZERO,
                    frame_hashes,
                }
            })
            .collect();

        if cfg.profile {
            mem.enable_attribution();
        }

        if cfg.hugepage_tables {
            // Element tables (NAT flow table, conntrack, route trie)
            // are allocated by the dataplanes' setup; remap them onto
            // hugepages so table walks stop paying 4-KiB DTLB misses.
            for d in &dataplanes {
                for r in d.table_regions() {
                    mem.mark_hugepages(r);
                }
            }
        }

        let timeline = cfg.timeline.map(|w| {
            TimelineRecorder::new(
                w.as_ps(),
                cfg.cores,
                DropCause::ALL.iter().map(|c| c.as_str()).collect(),
            )
        });
        let trace = cfg.trace.map(TraceRecorder::new);
        if trace.is_some() {
            for d in &mut dataplanes {
                d.set_span_recording(true);
            }
        }

        Engine {
            cfg,
            mem,
            nics,
            dataplanes,
            pairs,
            traces,
            measure_gen_start: None,
            batches: BTreeMap::new(),
            ledger: None,
            queue_ledgers: None,
            timeline,
            trace,
            timeline_report: None,
            trace_report: None,
        }
    }

    fn deliver_up_to(&mut self, now: SimTime) {
        let warmup = self.cfg.warmup;
        let plan = self.cfg.faults.as_ref().filter(|p| !p.is_empty());
        let qpn = Self::queues_per_nic(&self.cfg);
        let cores = self.cfg.cores;
        for (n, st) in self.nics.iter_mut().enumerate() {
            while st.next_idx < self.cfg.packets && st.next_time <= now {
                if st.next_idx == warmup && self.measure_gen_start.is_none() {
                    self.measure_gen_start = Some(st.next_time);
                }
                let frame = self.traces[n].frame(st.next_idx);
                let hash = st.frame_hashes[st.next_idx % st.frame_hashes.len()];
                let seq = st.next_idx as u64;
                // The recorder classifies wire losses by differencing the
                // cheap `NicStats` copy around the delivery — a pure read,
                // taken only while recording.
                let recording = self.timeline.is_some()
                    || self.trace.as_ref().is_some_and(|t| t.wants(n as u32, seq));
                let before = recording.then(|| st.dev.stats());
                let delivered = match plan {
                    None => st.dev.rx_deliver_hashed(
                        frame,
                        hash,
                        st.next_time,
                        seq,
                        &mut self.mem,
                        &mut st.dma,
                    ),
                    Some(p) => {
                        let fault = p.wire_fault(n as u64, seq, st.next_time, frame.len());
                        st.dev.rx_deliver_wire(
                            frame,
                            hash,
                            st.next_time,
                            seq,
                            &mut self.mem,
                            &mut st.dma,
                            fault,
                        )
                    }
                };
                if let Some(before) = before {
                    let at_ps = st.next_time.as_ps();
                    if let (Some(tl), Some(q)) = (self.timeline.as_mut(), delivered) {
                        // Attribute the arrival to the core that owns the
                        // steered (nic, queue) pair.
                        tl.on_rx((n * qpn + q) % cores, at_ps, 1);
                    }
                    if let Some(tr) = self.trace.as_mut() {
                        if tr.wants(n as u32, seq)
                            && tr.begin(n as u32, seq, at_ps)
                            && delivered.is_none()
                        {
                            let after = st.dev.stats();
                            let cause = if after.rx_fcs_errors > before.rx_fcs_errors {
                                DropCause::Fcs
                            } else if after.rx_link_down > before.rx_link_down {
                                DropCause::LinkDown
                            } else if after.rx_desc_drops > before.rx_desc_drops {
                                DropCause::Desc
                            } else {
                                DropCause::RxRing
                            };
                            tr.on_fate(n as u32, seq, at_ps, cause.as_str());
                        }
                    }
                }
                // Pacing always follows the frame as generated: faults
                // change what arrives, never when the next frame does.
                let wire_bits = (frame.len() as u64 + 20) * 8;
                st.next_time += SimTime::from_ps(
                    (wire_bits as f64 * 1000.0 / self.cfg.offered_gbps).round() as u64,
                );
                st.next_idx += 1;
            }
        }
    }

    fn next_arrival(&self) -> Option<SimTime> {
        self.nics
            .iter()
            .filter(|s| s.next_idx < self.cfg.packets)
            .map(|s| s.next_time)
            .min()
    }

    /// Earliest arrival among still-queued completions, if any.
    fn oldest_pending(&mut self) -> Option<SimTime> {
        let qpn = Self::queues_per_nic(&self.cfg);
        let mut oldest: Option<SimTime> = None;
        for st in &mut self.nics {
            for q in 0..qpn {
                if let Some(t) = st.dev.rx_ring_mut(q).oldest_arrival() {
                    oldest = Some(oldest.map_or(t, |o| o.min(t)));
                }
            }
        }
        oldest
    }

    /// Runs the experiment to completion and returns the measurements.
    pub fn run(&mut self) -> Measurement {
        let cores = self.cfg.cores;
        let freq = self.cfg.freq;
        let warmup_seq = self.cfg.warmup as u64;

        let mut clocks = vec![SimTime::ZERO; cores];
        // Round-robin cursor over each core's pairs.
        let mut rr = vec![0usize; cores];
        let core_pairs: Vec<Vec<usize>> = (0..cores)
            .map(|c| (0..self.pairs.len()).filter(|p| p % cores == c).collect())
            .collect();

        let mut hist = LatencyHistogram::new();
        let mut measured_tx_packets = 0u64;
        let mut measured_tx_bytes = 0u64;
        let mut nf_dropped = 0u64;
        // Whole-run NF drops per (nic, queue) pair for the per-queue
        // conservation ledger (`nf_dropped` only counts the measured
        // window).
        let mut nf_dropped_pairs = vec![0u64; self.pairs.len()];
        // Rotating tie-break cursor: when several cores share the
        // earliest clock, service them round-robin instead of always
        // favoring the lowest index. Deterministic, and at cores == 1 it
        // degenerates to the old lowest-index rule.
        let mut tie_rr = 0usize;
        let mut first_measured_arrival: Option<SimTime> = None;
        let mut first_measured_departure: Option<SimTime> = None;
        let mut last_departure = SimTime::ZERO;
        let mut measured_cost = Cost::ZERO;
        let mut counters_at_start: Option<MemCounters> = None;
        // Consecutive empty polls per core, to detect quiescence.
        let mut done = false;
        // Reused across bursts to keep the poll loop allocation-free.
        let mut sends: Vec<TxSend> = Vec::new();
        // Reused span scratch for the lifecycle trace.
        let mut span_buf: Vec<(String, Cost)> = Vec::new();

        while !done {
            // Pick the core with the earliest clock, breaking ties with
            // the rotating cursor so the interleave — and therefore every
            // artifact byte — is a pure function of the configuration.
            let min_clock = *clocks.iter().min().expect("at least one core");
            let core = (0..cores)
                .map(|i| (tie_rr + i) % cores)
                .find(|&c| clocks[c] == min_clock)
                .expect("a core holds the minimum clock");
            tie_rr = (core + 1) % cores;
            let now = clocks[core];
            self.deliver_up_to(now);
            if self.timeline.is_some() {
                self.observe_recorder(now, nf_dropped_pairs.iter().sum());
            }

            // Poll the next pair of this core.
            let my_pairs = &core_pairs[core];
            if my_pairs.is_empty() {
                clocks[core] = SimTime::MAX;
                continue;
            }
            let pair = my_pairs[rr[core] % my_pairs.len()];
            rr[core] += 1;
            let (nic_idx, q) = self.pairs[pair];

            let st = &mut self.nics[nic_idx];
            if let Some(tl) = self.timeline.as_mut() {
                // Occupancy is sampled at every poll of this pair —
                // including empty ones — so idle stretches still produce
                // samples.
                tl.on_occupancy(
                    core,
                    now.as_ps(),
                    st.dev.rx_ring(q).pending_completions() as u64,
                    st.dev.tx_ring(q).in_flight() as u64,
                    st.pmd.pool_available() as u64,
                );
            }
            let (pkts, mut cost) =
                st.pmd
                    .rx_burst(core, &mut st.dev, q, &st.dma, &mut self.mem, now);

            if pkts.is_empty() {
                // Nothing visible on this pair yet: advance to the next
                // event (a generator arrival, or a queued completion whose
                // DMA is still in flight), or finish.
                let next = match (self.next_arrival(), self.oldest_pending()) {
                    (Some(a), Some(p)) => Some(a.min(p)),
                    (a, p) => a.or(p),
                };
                match next {
                    Some(t) => {
                        // Busy-poll until the event (coarsened).
                        clocks[core] = clocks[core].max(t) + SimTime::from_ns(30.0);
                    }
                    None => done = true,
                }
                continue;
            }

            // Measurement window bookkeeping.
            let any_measured = pkts.iter().any(|p| p.seq >= warmup_seq);
            let first_measured = any_measured && counters_at_start.is_none();
            if first_measured {
                counters_at_start = Some(self.mem.counters());
                // Align the profile with the measured window. (The rx cost
                // of this first burst stays in `measured_cost` but its
                // attribution is wiped — a one-burst edge, well under the
                // 1% tolerance the profile is reported at. The batch
                // histogram skips the same burst so it stays consistent
                // with the attributed rx/pmd packet count.)
                self.mem.profile_reset();
                self.batches.clear();
            }
            if self.cfg.profile && any_measured && !first_measured {
                *self.batches.entry(pkts.len() as u64).or_insert(0) += 1;
            }
            if first_measured_arrival.is_none() {
                if let Some(p) = pkts.iter().find(|p| p.seq >= warmup_seq) {
                    first_measured_arrival = Some(p.arrival);
                }
            }

            // Process the burst through the dataplane.
            if let Some(tr) = self.trace.as_mut() {
                for p in &pkts {
                    if tr.wants(nic_idx as u32, p.seq) {
                        tr.on_delivered(nic_idx as u32, p.seq, q as u32, p.arrival.as_ps());
                        tr.on_poll(nic_idx as u32, p.seq, core as u32, now.as_ps());
                    }
                }
            }
            let dp = &mut self.dataplanes[pair];
            sends.clear();
            for desc in &pkts {
                let data = st.dma.data_mut(desc.buf_id);
                let sampled = self
                    .trace
                    .as_ref()
                    .is_some_and(|t| t.wants(nic_idx as u32, desc.seq));
                // Spans are laid out in virtual time from the charge the
                // burst has accumulated so far — reads only, no charges.
                let span_start = if sampled {
                    now + cost.time(freq)
                } else {
                    SimTime::ZERO
                };
                let r = dp.process(core, &mut self.mem, desc, data);
                cost += r.cost;
                if sampled {
                    span_buf.clear();
                    dp.take_spans(&mut span_buf);
                    if let Some(tr) = self.trace.as_mut() {
                        let mut t = span_start;
                        for (label, c) in span_buf.drain(..) {
                            let end = t + c.time(freq);
                            tr.on_span(nic_idx as u32, desc.seq, label, t.as_ps(), end.as_ps());
                            t = end;
                        }
                    }
                }
                match r.tx_len {
                    Some(len) => sends.push(TxSend { desc: *desc, len }),
                    None => {
                        cost += st.pmd.release(core, q, &mut self.mem, desc);
                        nf_dropped_pairs[pair] += 1;
                        if desc.seq >= warmup_seq {
                            nf_dropped += 1;
                        }
                        if sampled {
                            if let Some(tr) = self.trace.as_mut() {
                                tr.on_fate(
                                    nic_idx as u32,
                                    desc.seq,
                                    (now + cost.time(freq)).as_ps(),
                                    DropCause::Nf.as_str(),
                                );
                            }
                        }
                    }
                }
            }
            let batch_cost = dp.per_batch_cost(pkts.len());
            cost += batch_cost;
            self.mem.profile_charge_at(SCOPE_SCHEDULER, batch_cost);

            // Advance the core clock by the batch's service time, then
            // hand the frames to the NIC at that instant. ToDPDKDevice
            // applies backpressure: when the TX ring is full the core
            // spins until the wire frees a slot, rather than dropping.
            clocks[core] = now + cost.time(freq);
            let mut offset = 0usize;
            while offset < sends.len() {
                let free = st.dev.tx_free_slots(q);
                if free == 0 {
                    match st.dev.tx_oldest_departure(q) {
                        Some(t) => clocks[core] = clocks[core].max(t),
                        None => break, // cannot happen: full ring has frames
                    }
                    // An empty burst still reaps completions.
                    let (_, c) =
                        st.pmd
                            .tx_burst(core, &mut st.dev, q, &mut self.mem, clocks[core], &[]);
                    clocks[core] += c.time(freq);
                    if any_measured {
                        measured_cost += c;
                    }
                    continue;
                }
                let n = free.min(sends.len() - offset);
                let chunk = &sends[offset..offset + n];
                let tx_at = clocks[core];
                let (departures, tx_cost) =
                    st.pmd
                        .tx_burst(core, &mut st.dev, q, &mut self.mem, tx_at, chunk);
                clocks[core] += tx_cost.time(freq);
                if any_measured {
                    measured_cost += tx_cost;
                }
                for (send, dep) in chunk.iter().zip(&departures) {
                    if let Some(d) = dep {
                        last_departure = last_departure.max(*d);
                        if send.desc.seq >= warmup_seq {
                            if first_measured_departure.is_none() {
                                first_measured_departure = Some(*d);
                            }
                            measured_tx_packets += 1;
                            measured_tx_bytes += send.len as u64;
                            let lat = d.saturating_sub(send.desc.gen) + self.cfg.base_latency;
                            hist.record(lat.as_ns() as u64);
                        }
                        if let Some(tl) = self.timeline.as_mut() {
                            let lat = d.saturating_sub(send.desc.gen) + self.cfg.base_latency;
                            tl.on_tx(core, d.as_ps(), send.len as u64, lat.as_ns() as u64);
                        }
                    }
                    if let Some(tr) = self.trace.as_mut() {
                        if tr.wants(nic_idx as u32, send.desc.seq) {
                            tr.on_tx_enqueue(nic_idx as u32, send.desc.seq, tx_at.as_ps());
                            match dep {
                                Some(d) => {
                                    tr.on_fate(nic_idx as u32, send.desc.seq, d.as_ps(), "tx");
                                }
                                None => tr.on_fate(
                                    nic_idx as u32,
                                    send.desc.seq,
                                    tx_at.as_ps(),
                                    DropCause::TxRing.as_str(),
                                ),
                            }
                        }
                    }
                }
                offset += n;
            }

            if any_measured {
                measured_cost += cost;
            }
        }

        // Close the flight recorder at the last instant the run touched:
        // the final core clocks and the last wire departure.
        if self.timeline.is_some() || self.trace.is_some() {
            let end = clocks
                .iter()
                .filter(|&&c| c != SimTime::MAX)
                .fold(last_departure, |e, &c| e.max(c));
            if let Some(tl) = self.timeline.take() {
                self.timeline_report = Some(tl.finish(end.as_ps()));
            }
            if let Some(tr) = self.trace.take() {
                self.trace_report = Some(tr.finish());
            }
        }

        // Measurement window: first-to-last measured TX departure. Under
        // saturation this yields the true service rate; unsaturated it
        // converges to the offered rate (both ends shift by the same
        // latency). The generation-span start is kept as a lower bound so
        // a handful of departures cannot inflate the rate.
        let start = first_measured_departure
            .or(self.measure_gen_start)
            .or(first_measured_arrival)
            .unwrap_or(SimTime::ZERO);
        let elapsed = last_departure.saturating_sub(start);
        let elapsed_s = elapsed.as_secs().max(1e-9);
        let deltas = self
            .mem
            .counters()
            .delta_since(&counters_at_start.unwrap_or_default());
        let windows_per_run = elapsed_s / 0.1;

        // Always-on packet conservation: every generated packet must be
        // explained by exactly one categorized outcome. An imbalance
        // means a layer lost or double-counted packets — a bug, faulted
        // or not.
        let stats: Vec<_> = self.nics.iter().map(|s| s.dev.stats()).collect();
        let ledger = Ledger {
            generated: self.nics.iter().map(|s| s.next_idx as u64).sum(),
            fcs_dropped: stats.iter().map(|s| s.rx_fcs_errors).sum(),
            link_down_dropped: stats.iter().map(|s| s.rx_link_down).sum(),
            desc_dropped: stats.iter().map(|s| s.rx_desc_drops).sum(),
            rx_ring_dropped: stats.iter().map(|s| s.rx_dropped).sum(),
            nf_dropped: nf_dropped_pairs.iter().sum(),
            tx_ring_dropped: stats.iter().map(|s| s.tx_dropped).sum(),
            tx_sent: stats.iter().map(|s| s.tx_packets).sum(),
            truncated_delivered: stats.iter().map(|s| s.rx_truncated).sum(),
            pool_denials: self.nics.iter().map(|s| s.pmd.stats().pool_denials).sum(),
        };
        assert!(
            ledger.balances(),
            "packet-conservation ledger unbalanced: {ledger}"
        );
        self.ledger = Some(ledger);

        // Per-queue conservation: each queue's delivered packets must be
        // explained by that queue's own NF drops, TX-ring drops, and
        // transmissions — a queue cannot balance by borrowing from a
        // sibling.
        let queue_ledgers: Vec<QueueLedger> = self
            .pairs
            .iter()
            .enumerate()
            .map(|(p, &(n, q))| {
                let qs = self.nics[n].dev.queue_stats(q);
                QueueLedger {
                    core: p % cores,
                    nic: n,
                    queue: q,
                    delivered: qs.rx_packets,
                    rx_ring_dropped: qs.rx_dropped,
                    nf_dropped: nf_dropped_pairs[p],
                    tx_ring_dropped: qs.tx_dropped,
                    tx_sent: qs.tx_packets,
                }
            })
            .collect();
        for ql in &queue_ledgers {
            assert!(
                ql.balances(),
                "per-queue ledger unbalanced on nic {} queue {}: \
                 delivered {} != nf_dropped {} + tx_ring_dropped {} + tx_sent {}",
                ql.nic,
                ql.queue,
                ql.delivered,
                ql.nf_dropped,
                ql.tx_ring_dropped,
                ql.tx_sent
            );
        }
        self.queue_ledgers = Some(queue_ledgers);

        Measurement {
            throughput_gbps: measured_tx_bytes as f64 * 8.0 / elapsed_s / 1e9,
            mpps: measured_tx_packets as f64 / elapsed_s / 1e6,
            median_latency_us: hist.median() as f64 / 1e3,
            p99_latency_us: hist.p99() as f64 / 1e3,
            mean_latency_us: hist.mean() / 1e3,
            ipc: measured_cost.ipc(freq),
            llc_loads_per_100ms: deltas.llc_loads as f64 / windows_per_run,
            llc_misses_per_100ms: deltas.llc_load_misses as f64 / windows_per_run,
            llc_miss_pct: if deltas.llc_loads == 0 {
                0.0
            } else {
                deltas.llc_load_misses as f64 / deltas.llc_loads as f64 * 100.0
            },
            rx_dropped: self.nics.iter().map(|s| s.dev.stats().rx_dropped).sum(),
            nf_dropped,
            tx_dropped: self.nics.iter().map(|s| s.dev.stats().tx_dropped).sum(),
            tx_packets: measured_tx_packets,
            elapsed_ms: elapsed.as_ms(),
            instr_per_packet: measured_cost.instructions as f64 / measured_tx_packets.max(1) as f64,
            cycles_per_packet: measured_cost.cycles / measured_tx_packets.max(1) as f64,
            uncore_ns_per_packet: measured_cost.uncore_ns / measured_tx_packets.max(1) as f64,
        }
    }

    /// Feeds the timeline's cumulative counter series at `now`. Pure
    /// reads of engine state — the recorder charges nothing.
    fn observe_recorder(&mut self, now: SimTime, nf_total: u64) {
        let Some(tl) = self.timeline.as_mut() else {
            return;
        };
        let now_ps = now.as_ps();
        tl.observe_llc(now_ps, self.mem.counters().llc_load_misses);
        // Cumulative drops, in `DropCause::ALL` order.
        let mut drops = [0u64; 6];
        for st in &self.nics {
            let s = st.dev.stats();
            drops[0] += s.rx_fcs_errors;
            drops[1] += s.rx_link_down;
            drops[2] += s.rx_desc_drops;
            drops[3] += s.rx_dropped;
            drops[5] += s.tx_dropped;
        }
        drops[4] = nf_total;
        tl.observe_drops(now_ps, &drops);
    }

    /// Takes the finished flight-recorder timeline (`None` unless the
    /// engine was built with [`EngineConfig::timeline`] and has run).
    pub fn take_timeline(&mut self) -> Option<TimelineReport> {
        self.timeline_report.take()
    }

    /// Takes the finished sampled lifecycle traces (`None` unless the
    /// engine was built with [`EngineConfig::trace`] and has run).
    pub fn take_trace(&mut self) -> Option<TraceReport> {
        self.trace_report.take()
    }

    /// The packet-conservation ledger of the completed run (`None`
    /// before [`Engine::run`]). Always balanced — `run` asserts it.
    pub fn ledger(&self) -> Option<Ledger> {
        self.ledger
    }

    /// The per-(nic, queue) conservation ledgers of the completed run
    /// (`None` before [`Engine::run`]). Each is balanced — `run` asserts
    /// it. Ordered by pair index, i.e. by `(nic, queue)`.
    pub fn queue_ledgers(&self) -> Option<&[QueueLedger]> {
        self.queue_ledgers.as_deref()
    }

    /// The active fault plan, if a non-empty one was configured.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.cfg.faults.as_ref().filter(|p| !p.is_empty())
    }

    /// Per-element `(name, packets, drops)` statistics aggregated over
    /// all dataplane instances (Click read handlers).
    pub fn element_stats(&self) -> Vec<(String, u64, u64)> {
        let mut agg: Vec<(String, u64, u64)> = Vec::new();
        for dp in &self.dataplanes {
            for (name, seen, dropped) in dp.element_stats() {
                match agg.iter_mut().find(|(n, _, _)| *n == name) {
                    Some(row) => {
                        row.1 += seen;
                        row.2 += dropped;
                    }
                    None => agg.push((name, seen, dropped)),
                }
            }
        }
        agg
    }

    /// Per-table occupancy/policy counters aggregated over all
    /// dataplane instances, keyed by element name: counters sum, the
    /// chain/capacity/occupancy fields combine so the row reads as one
    /// logical table sharded across queues.
    pub fn table_stats(&self) -> Vec<pm_click::TableStats> {
        let mut agg: Vec<pm_click::TableStats> = Vec::new();
        for dp in &self.dataplanes {
            for t in dp.table_stats() {
                match agg.iter_mut().find(|a| a.name == t.name) {
                    Some(a) => {
                        a.capacity += t.capacity;
                        a.occupancy += t.occupancy;
                        a.lookups += t.lookups;
                        a.hits += t.hits;
                        a.insertions += t.insertions;
                        a.expiries += t.expiries;
                        a.evictions += t.evictions;
                        a.displacements += t.displacements;
                        a.max_chain = a.max_chain.max(t.max_chain);
                    }
                    None => agg.push(t),
                }
            }
        }
        agg
    }

    /// Takes the first dataplane's field profile (profiling runs).
    pub fn take_profile(&mut self) -> Option<pm_click::FieldProfile> {
        self.dataplanes.first_mut().and_then(|d| d.take_profile())
    }

    /// Enables profiling on every dataplane.
    pub fn set_profiling(&mut self, on: bool) {
        for d in &mut self.dataplanes {
            d.set_profiling(on);
        }
    }

    /// The per-element profile accumulated over the measured window, or
    /// `None` unless the engine was built with [`EngineConfig::profile`].
    ///
    /// Scopes that saw no work are dropped; the RX batch-size histogram
    /// is attached to the `rx/pmd` stage record.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        if !self.cfg.profile {
            return None;
        }
        let records = self
            .mem
            .profile_records()
            .into_iter()
            .filter(|(_, p)| *p != pm_mem::ScopeProfile::default())
            .map(|(name, p)| {
                let batches = if name == "rx/pmd" {
                    self.batches.iter().map(|(&k, &v)| (k, v)).collect()
                } else {
                    Vec::new()
                };
                ProfileRecord {
                    name,
                    cycles: p.cost.cycles,
                    stall_ns: p.cost.uncore_ns,
                    instructions: p.cost.instructions,
                    loads: p.counters.loads,
                    stores: p.counters.stores,
                    l2_loads: p.counters.l1d_load_misses,
                    llc_loads: p.counters.llc_loads,
                    llc_load_misses: p.counters.llc_load_misses,
                    llc_stores: p.counters.llc_stores,
                    dtlb_misses: p.counters.dtlb_misses,
                    packets: p.packets,
                    batches,
                }
            })
            .collect();
        Some(ProfileReport {
            freq_ghz: self.cfg.freq.as_ghz(),
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queues_per_nic_rules() {
        let mut cfg = EngineConfig::default();
        assert_eq!(Engine::queues_per_nic(&cfg), 1);
        cfg.cores = 4;
        assert_eq!(Engine::queues_per_nic(&cfg), 4);
        cfg.nics = 2;
        assert_eq!(Engine::queues_per_nic(&cfg), 2);
        cfg.cores = 1;
        assert_eq!(Engine::queues_per_nic(&cfg), 1, "two NICs, one core");
    }

    #[test]
    #[should_panic(expected = "one dataplane per")]
    fn dimension_mismatch_caught() {
        let cfg = EngineConfig {
            cores: 2,
            ..EngineConfig::default()
        };
        let mut space = pm_mem::AddressSpace::new();
        let traces = vec![Trace::synthesize(&pm_traffic::TraceConfig {
            packets: 16,
            ..Default::default()
        })];
        let _ = Engine::new(cfg, Vec::new(), traces, &mut space);
    }

    #[test]
    fn measurement_fields_consistent() {
        // Covered end-to-end in the integration tests; here just the
        // arithmetic helpers on a tiny run via the facade would recurse
        // crates — keep the structural invariant instead.
        let m = Measurement {
            throughput_gbps: 10.0,
            mpps: 1.0,
            median_latency_us: 5.0,
            p99_latency_us: 9.0,
            mean_latency_us: 6.0,
            ipc: 2.0,
            llc_loads_per_100ms: 100.0,
            llc_misses_per_100ms: 50.0,
            llc_miss_pct: 50.0,
            rx_dropped: 0,
            nf_dropped: 0,
            tx_dropped: 0,
            tx_packets: 100,
            elapsed_ms: 1.0,
            instr_per_packet: 500.0,
            cycles_per_packet: 150.0,
            uncore_ns_per_packet: 20.0,
        };
        assert!(m.p99_latency_us >= m.median_latency_us);
    }
}
