//! The `packetmill` command-line tool: run any Click-language
//! configuration through the optimizer and the simulated 100-Gbps
//! testbed, print the optimization log, the emitted specialized source,
//! and the measurements.
//!
//! ```text
//! packetmill --nf router --model xchange --opt all --freq 2.3
//! packetmill --config my.click --model copying --opt vanilla
//! packetmill --nf nat --cores 4 --offered 80 --packets 100000
//! ```

use packetmill::{
    emit_specialized_source, ExperimentBuilder, MetadataModel, Nf, OptLevel, TrafficProfile,
};
use std::process::ExitCode;

const USAGE: &str = "\
packetmill — run an NF through the PacketMill optimizer + simulated testbed

USAGE:
    packetmill [OPTIONS]

OPTIONS:
    --nf <NAME>          forwarder | router | ids-router | nat | firewall [default: router]
    --config <FILE>      run a Click configuration file instead of a preset
    --model <MODEL>      copying | overlaying | xchange          [default: copying]
    --opt <LEVEL>        vanilla | devirtualize | constants | static | all | full
                                                                 [default: vanilla]
    --freq <GHZ>         core frequency in GHz                   [default: 2.3]
    --cores <N>          processing cores (RSS over queues)      [default: 1]
    --nics <N>           NIC ports                               [default: 1]
    --offered <GBPS>     offered load per NIC                    [default: 100]
    --packets <N>        generated packets per NIC               [default: 60000]
    --size <BYTES>       fixed packet size (default: campus mix)
    --pcap <FILE>        replay a pcap capture instead of synthetic traffic
    --seed <N>           RNG seed                                [default: 51966]
    --emit-source        print the emitted specialized source
    --show-log           print the optimizer's transformation log
    --handlers           print per-element packet/drop counters
    -h, --help           print this help
";

struct Options {
    nf: Nf,
    model: MetadataModel,
    opt: OptLevel,
    freq: f64,
    cores: usize,
    nics: usize,
    offered: f64,
    packets: usize,
    size: Option<usize>,
    pcap: Option<String>,
    seed: u64,
    emit_source: bool,
    show_log: bool,
    handlers: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        nf: Nf::Router,
        model: MetadataModel::Copying,
        opt: OptLevel::Vanilla,
        freq: 2.3,
        cores: 1,
        nics: 1,
        offered: 100.0,
        packets: 60_000,
        size: None,
        pcap: None,
        seed: 0xCAFE,
        emit_source: false,
        show_log: false,
        handlers: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--nf" => {
                o.nf = match value("--nf")?.as_str() {
                    "forwarder" => Nf::Forwarder,
                    "router" => Nf::Router,
                    "ids-router" => Nf::IdsRouter,
                    "nat" => Nf::Nat,
                    "firewall" => Nf::Firewall,
                    other => return Err(format!("unknown NF {other:?}")),
                }
            }
            "--config" => {
                let path = value("--config")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                o.nf = Nf::Custom(text);
            }
            "--model" => {
                o.model = match value("--model")?.as_str() {
                    "copying" => MetadataModel::Copying,
                    "overlaying" => MetadataModel::Overlaying,
                    "xchange" | "x-change" => MetadataModel::XChange,
                    other => return Err(format!("unknown model {other:?}")),
                }
            }
            "--opt" => {
                o.opt = match value("--opt")?.as_str() {
                    "vanilla" => OptLevel::Vanilla,
                    "devirtualize" => OptLevel::Devirtualize,
                    "constants" => OptLevel::ConstantEmbed,
                    "static" => OptLevel::StaticGraph,
                    "all" => OptLevel::AllSource,
                    "full" => OptLevel::Full,
                    other => return Err(format!("unknown opt level {other:?}")),
                }
            }
            "--freq" => o.freq = num(&value("--freq")?)?,
            "--cores" => o.cores = num(&value("--cores")?)? as usize,
            "--nics" => o.nics = num(&value("--nics")?)? as usize,
            "--offered" => o.offered = num(&value("--offered")?)?,
            "--packets" => o.packets = num(&value("--packets")?)? as usize,
            "--size" => o.size = Some(num(&value("--size")?)? as usize),
            "--pcap" => o.pcap = Some(value("--pcap")?),
            "--seed" => o.seed = num(&value("--seed")?)? as u64,
            "--emit-source" => o.emit_source = true,
            "--show-log" => o.show_log = true,
            "--handlers" => o.handlers = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(o)
}

fn num(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut builder = ExperimentBuilder::new(o.nf.clone())
        .metadata_model(o.model)
        .optimization(o.opt)
        .frequency_ghz(o.freq)
        .cores(o.cores)
        .nics(o.nics)
        .offered_gbps(o.offered)
        .packets(o.packets)
        .seed(o.seed);
    if let Some(size) = o.size {
        builder = builder.traffic(TrafficProfile::FixedSize(size));
    }
    if let Some(path) = &o.pcap {
        match packetmill::Trace::from_pcap(std::path::Path::new(path)) {
            Ok(t) => {
                println!(
                    "loaded {path}: {} frames, mean {:.0} B",
                    t.len(),
                    t.mean_frame_len()
                );
                builder = builder.trace(t);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if o.show_log || o.emit_source {
        match builder.build_ir() {
            Ok(ir) => {
                if o.show_log {
                    println!("optimizer log:");
                    for line in &ir.log {
                        println!("  - {line}");
                    }
                    if ir.log.is_empty() {
                        println!("  (no transformations at this level)");
                    }
                    println!();
                }
                if o.emit_source {
                    println!("{}", emit_specialized_source(&ir));
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match builder.run_with_handlers() {
        Ok((m, handlers)) => {
            println!(
                "configuration : {} / {:?} / {:?}",
                nf_name(&o.nf),
                o.model,
                o.opt
            );
            println!(
                "testbed       : {} core(s) @ {} GHz, {} NIC(s), {} Gbps offered",
                o.cores, o.freq, o.nics, o.offered
            );
            println!(
                "throughput    : {:.2} Gbps ({:.2} Mpps)",
                m.throughput_gbps, m.mpps
            );
            println!(
                "latency       : p50 {:.1} us   p99 {:.1} us   mean {:.1} us",
                m.median_latency_us, m.p99_latency_us, m.mean_latency_us
            );
            println!("ipc           : {:.2}", m.ipc);
            println!(
                "llc           : {:.0}k loads / {:.0}k misses per 100 ms ({:.1}% miss)",
                m.llc_loads_per_100ms / 1e3,
                m.llc_misses_per_100ms / 1e3,
                m.llc_miss_pct
            );
            println!(
                "drops         : {} at NIC, {} in NF, {} at TX ring",
                m.rx_dropped, m.nf_dropped, m.tx_dropped
            );
            if o.handlers {
                println!("\nper-element handlers:");
                for (name, seen, dropped) in handlers {
                    println!("  {name:<24} packets {seen:>9}   drops {dropped:>8}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn nf_name(nf: &Nf) -> &'static str {
    match nf {
        Nf::Forwarder => "forwarder",
        Nf::Router => "router",
        Nf::IdsRouter => "ids-router",
        Nf::Nat => "nat",
        Nf::Firewall => "firewall",
        Nf::NatScale(_) => "nat-scale",
        Nf::FirewallScale(_) => "firewall-scale",
        Nf::RouterScale(_) => "router-scale",
        Nf::WorkPackage { .. } | Nf::WorkPackageKb { .. } => "workpackage",
        Nf::Custom(_) => "custom config",
    }
}
