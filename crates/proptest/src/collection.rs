//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// A size constraint for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// A strategy producing `Vec`s of `element` draws.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with a size in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `HashSet`s of `element` draws.
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `HashSet` strategy with a size in `size`. Duplicate draws are
/// retried a bounded number of times, so the set may come up short of
/// the minimum only if the element domain is too small.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.draw(rng);
        let mut out = HashSet::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < n * 100 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
