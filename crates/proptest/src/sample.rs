//! Sampling helpers: the collection-agnostic [`Index`].

use crate::strategy::Arbitrary;
use crate::TestRng;

/// An abstract index into a collection of yet-unknown size, resolved
/// with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(u64);

impl Index {
    /// Resolves to a concrete index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index(0)");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
