//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the proptest API its tests use: `proptest!`,
//! `any::<T>()`, range/tuple/string-pattern strategies, `prop_map`,
//! `prop_oneof!`, `proptest::collection::{vec, hash_set}`,
//! `proptest::sample::Index`, and the `prop_assert*` macros.
//!
//! Inputs are generated from a per-test deterministic RNG (seeded from
//! the test name), so failures reproduce across runs. Unlike real
//! proptest there is no shrinking: a failing case reports the assertion
//! message only. The case count defaults to 128 and can be overridden
//! with `PROPTEST_CASES`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

pub mod collection;
pub mod sample;
pub mod strategy;

pub use strategy::{any, Strategy};

/// What a failed property returns through the generated test body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// SplitMix64 — small, fast, deterministic; good enough for test-input
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A deterministic RNG seeded from the test name.
    pub fn default_for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// The commonly-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let mut rng = $crate::TestRng::default_for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..$crate::cases() {
                let run = |rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::generate(&$strat, rng);)+
                    $body
                    ::std::result::Result::Ok(())
                };
                if let Err(e) = run(&mut rng) {
                    panic!("property {} failed on case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::proptest!{$($rest)*}
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    [$($s:expr),+ $(,)?] => {
        $crate::strategy::union(vec![$($crate::strategy::boxed($s)),+])
    };
}
