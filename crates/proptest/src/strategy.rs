//! Value-generation strategies: `any`, ranges, tuples, string patterns,
//! `prop_map`, and unions.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Produces random values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate(rng)
    }
}

/// A boxed strategy (used by `prop_oneof!`).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Picks uniformly among `arms` each draw.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

/// Builds a [`Union`]; used by `prop_oneof!`.
pub fn union<T>(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Union { arms }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a default "whole domain" strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The default strategy for `T`: the whole value domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning a broad magnitude range.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo + 1;
                if span == 0 {
                    // Full-domain u64 range.
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span)) as $t
                }
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// `&str` patterns act as string strategies. Supported syntax: a
/// sequence of atoms, each a literal character or a `[...]` class
/// (ranges and single characters), optionally followed by `{m,n}`
/// repetition. This covers patterns like `"[a-z][a-z0-9_]{0,8}"`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below(u64::from(atom.max - atom.min + 1)) as u32;
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: u32,
    max: u32,
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pat.chars().peekable();
    while let Some(c) = it.next() {
        let chars = if c == '[' {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            while let Some(d) = it.next() {
                if d == ']' {
                    break;
                }
                if d == '-' {
                    if let (Some(lo), Some(&hi)) = (prev, it.peek()) {
                        if hi != ']' {
                            it.next();
                            for x in (lo as u32 + 1)..=(hi as u32) {
                                set.push(char::from_u32(x).expect("valid range"));
                            }
                            prev = None;
                            continue;
                        }
                    }
                    set.push('-');
                    prev = Some('-');
                } else {
                    set.push(d);
                    prev = Some(d);
                }
            }
            assert!(!set.is_empty(), "empty character class in pattern {pat:?}");
            set
        } else {
            vec![c]
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let spec: String = it.by_ref().take_while(|&d| d != '}').collect();
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repeat min"),
                    n.trim().parse().expect("repeat max"),
                ),
                None => {
                    let m: u32 = spec.trim().parse().expect("repeat count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { chars, min, max });
    }
    atoms
}
