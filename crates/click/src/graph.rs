//! Runtime graph construction: element registry, instantiation,
//! validation, and a few built-in elements.

use crate::config::{Args, ConfigError, ConfigGraph};
use crate::element::{Action, Ctx, Element, ElementKind, Pkt};
use std::collections::HashMap;

/// A boxed element constructor, as stored in the registry.
type ElementFactory = Box<dyn Fn() -> Box<dyn Element>>;

/// A factory table mapping class names to element constructors.
#[derive(Default)]
pub struct ElementRegistry {
    factories: HashMap<&'static str, ElementFactory>,
}

impl std::fmt::Debug for ElementRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.factories.keys().copied().collect();
        names.sort_unstable();
        f.debug_struct("ElementRegistry")
            .field("classes", &names)
            .finish()
    }
}

impl ElementRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the built-in basics
    /// (`FromDPDKDevice`, `ToDPDKDevice`, `Null`, `Discard`).
    pub fn with_basics() -> Self {
        let mut r = Self::new();
        r.register("FromDPDKDevice", || Box::new(FromDpdkDevice::default()));
        r.register("ToDPDKDevice", || Box::new(ToDpdkDevice::default()));
        r.register("Null", || Box::new(Null));
        r.register("Discard", || Box::new(Discard));
        r
    }

    /// Registers a class constructor (replacing any previous one).
    pub fn register<F>(&mut self, class: &'static str, factory: F)
    where
        F: Fn() -> Box<dyn Element> + 'static,
    {
        self.factories.insert(class, Box::new(factory));
    }

    /// Instantiates a class, if known.
    pub fn create(&self, class: &str) -> Option<Box<dyn Element>> {
        self.factories.get(class).map(|f| f())
    }

    /// True if `class` is registered.
    pub fn knows(&self, class: &str) -> bool {
        self.factories.contains_key(class)
    }
}

/// An instantiated element with its configuration-time identity.
pub struct ElementInfo {
    /// Configuration name.
    pub name: String,
    /// Class name.
    pub class: String,
    /// The live element.
    pub element: Box<dyn Element>,
    /// Its configuration arguments (kept for the optimizer).
    pub args: Args,
}

impl std::fmt::Debug for ElementInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} :: {}", self.name, self.class)
    }
}

/// The runtime element graph.
#[derive(Debug)]
pub struct Graph {
    /// Elements, indexed as in the configuration.
    pub elements: Vec<ElementInfo>,
    /// `adj[element][out_port] = (successor, in_port)`.
    pub adj: Vec<Vec<Option<(usize, u16)>>>,
    /// Indices of source elements (usually one `FromDPDKDevice` per
    /// queue; two for the dual-NIC experiment).
    pub sources: Vec<usize>,
}

impl Graph {
    /// Builds and validates a runtime graph from a parsed configuration.
    pub fn build(config: &ConfigGraph, registry: &ElementRegistry) -> Result<Graph, ConfigError> {
        let mut elements = Vec::with_capacity(config.declarations.len());
        for d in &config.declarations {
            let mut el = registry
                .create(&d.class)
                .ok_or_else(|| ConfigError::Element {
                    element: d.name.clone(),
                    message: format!("unknown element class {:?}", d.class),
                })?;
            el.configure(&d.args).map_err(|e| match e {
                ConfigError::Element { message, .. } => ConfigError::Element {
                    element: d.name.clone(),
                    message,
                },
                other => other,
            })?;
            elements.push(ElementInfo {
                name: d.name.clone(),
                class: d.class.clone(),
                element: el,
                args: d.args.clone(),
            });
        }

        let mut adj: Vec<Vec<Option<(usize, u16)>>> = elements
            .iter()
            .map(|e| vec![None; e.element.n_outputs() as usize])
            .collect();
        for c in &config.connections {
            let nout = elements[c.from].element.n_outputs();
            if c.from_port >= nout {
                return Err(ConfigError::Element {
                    element: elements[c.from].name.clone(),
                    message: format!(
                        "output port {} out of range (element has {nout})",
                        c.from_port
                    ),
                });
            }
            let slot = &mut adj[c.from][c.from_port as usize];
            if slot.is_some() {
                return Err(ConfigError::Element {
                    element: elements[c.from].name.clone(),
                    message: format!("output port {} connected twice (push port)", c.from_port),
                });
            }
            *slot = Some((c.to, c.to_port));
        }

        // Every processing/source element's output ports must be wired.
        for (i, e) in elements.iter().enumerate() {
            if e.element.kind() == ElementKind::Sink {
                continue;
            }
            for (p, s) in adj[i].iter().enumerate() {
                if s.is_none() {
                    return Err(ConfigError::Element {
                        element: e.name.clone(),
                        message: format!("output port {p} is not connected"),
                    });
                }
            }
        }

        let sources: Vec<usize> = elements
            .iter()
            .enumerate()
            .filter(|(_, e)| e.element.kind() == ElementKind::Source)
            .map(|(i, _)| i)
            .collect();
        if sources.is_empty() {
            return Err(ConfigError::Element {
                element: "<config>".into(),
                message: "no source element (FromDPDKDevice) in the graph".into(),
            });
        }

        Ok(Graph {
            elements,
            adj,
            sources,
        })
    }

    /// The element downstream of source `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a source index.
    pub fn entry_of(&self, src: usize) -> (usize, u16) {
        assert!(self.sources.contains(&src), "{src} is not a source");
        self.adj[src][0].expect("validated: sources are connected")
    }

    /// Finds an element index by configuration name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.elements.iter().position(|e| e.name == name)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the graph has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

// ---------------------------------------------------------------------
// Built-in basic elements.
// ---------------------------------------------------------------------

/// `FromDPDKDevice(PORT, N_QUEUES, BURST)`: the packet source. Driven by
/// the engine; never executed per packet.
#[derive(Debug, Default)]
pub struct FromDpdkDevice {
    /// NIC port index.
    pub port: u32,
    /// Number of RX queues.
    pub n_queues: u32,
    /// RX burst size.
    pub burst: u32,
}

impl Element for FromDpdkDevice {
    fn class_name(&self) -> &'static str {
        "FromDPDKDevice"
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Source
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        self.port = args.get_u32(
            "PORT",
            args.positional(0).and_then(|s| s.parse().ok()).unwrap_or(0),
        )?;
        self.n_queues = args.get_u32("N_QUEUES", 1)?;
        self.burst = args.get_u32("BURST", 32)?;
        Ok(())
    }

    fn process(&mut self, _ctx: &mut Ctx<'_>, _pkt: &mut Pkt<'_>) -> Action {
        Action::Forward(0)
    }
}

/// `ToDPDKDevice(PORT, BURST)`: the TX sink.
#[derive(Debug, Default)]
pub struct ToDpdkDevice {
    /// NIC port index.
    pub port: u32,
    /// TX burst size.
    pub burst: u32,
}

impl Element for ToDpdkDevice {
    fn class_name(&self) -> &'static str {
        "ToDPDKDevice"
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Sink
    }

    fn n_outputs(&self) -> u16 {
        0
    }

    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        self.port = args.get_u32(
            "PORT",
            args.positional(0).and_then(|s| s.parse().ok()).unwrap_or(0),
        )?;
        self.burst = args.get_u32("BURST", 32)?;
        Ok(())
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, _pkt: &mut Pkt<'_>) -> Action {
        // Enqueue-to-TX bookkeeping; the PMD charges the descriptor work.
        ctx.compute(6);
        Action::Forward(0)
    }
}

/// `Null`: passes packets through untouched (costs one instruction).
#[derive(Debug, Default)]
pub struct Null;

impl Element for Null {
    fn class_name(&self) -> &'static str {
        "Null"
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, _pkt: &mut Pkt<'_>) -> Action {
        ctx.compute(1);
        Action::Forward(0)
    }
}

/// `Discard`: drops every packet.
#[derive(Debug, Default)]
pub struct Discard;

impl Element for Discard {
    fn class_name(&self) -> &'static str {
        "Discard"
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Sink
    }

    fn n_outputs(&self) -> u16 {
        0
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, _pkt: &mut Pkt<'_>) -> Action {
        ctx.compute(1);
        Action::Drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FWD: &str = "in :: FromDPDKDevice(0); out :: ToDPDKDevice(0); in -> Null -> out;";

    #[test]
    fn builds_valid_graph() {
        let cfg = ConfigGraph::parse(FWD).unwrap();
        let g = Graph::build(&cfg, &ElementRegistry::with_basics()).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.sources, vec![0]);
        let (entry, port) = g.entry_of(0);
        assert_eq!(g.elements[entry].class, "Null");
        assert_eq!(port, 0);
    }

    #[test]
    fn unknown_class_rejected() {
        let cfg = ConfigGraph::parse("a :: NoSuchThing; b :: Discard; a -> b;").unwrap();
        let err = Graph::build(&cfg, &ElementRegistry::with_basics()).unwrap_err();
        assert!(err.to_string().contains("unknown element class"));
    }

    #[test]
    fn dangling_output_rejected() {
        let cfg = ConfigGraph::parse("in :: FromDPDKDevice(0); n :: Null; in -> n;").unwrap();
        let err = Graph::build(&cfg, &ElementRegistry::with_basics()).unwrap_err();
        assert!(err.to_string().contains("not connected"));
    }

    #[test]
    fn double_connection_rejected() {
        let cfg = ConfigGraph::parse(
            "in :: FromDPDKDevice(0); a :: Discard; b :: Discard; in -> a; in -> b;",
        )
        .unwrap();
        let err = Graph::build(&cfg, &ElementRegistry::with_basics()).unwrap_err();
        assert!(err.to_string().contains("connected twice"));
    }

    #[test]
    fn missing_source_rejected() {
        let cfg = ConfigGraph::parse("a :: Null; b :: Discard; a -> b;").unwrap();
        let err = Graph::build(&cfg, &ElementRegistry::with_basics()).unwrap_err();
        assert!(err.to_string().contains("no source"));
    }

    #[test]
    fn from_dpdk_args_parsed() {
        let cfg = ConfigGraph::parse(
            "in :: FromDPDKDevice(PORT 1, N_QUEUES 4, BURST 16); in -> Discard;",
        )
        .unwrap();
        let g = Graph::build(&cfg, &ElementRegistry::with_basics()).unwrap();
        // Downcast-free check via configuration round trip: burst reached
        // the element (verified through its Debug output).
        let dbg = format!("{:?}", g.elements[0]);
        assert!(dbg.contains("FromDPDKDevice"));
    }
}
