//! The Click configuration language: lexer + parser.
//!
//! Supported grammar (the subset the paper's five NF configurations use,
//! plus anonymous inline elements):
//!
//! ```text
//! config      := (statement ';')*
//! statement   := declaration | connection
//! declaration := NAME "::" CLASS [ '(' args ')' ]
//! connection  := endpoint ( "->" endpoint )+
//! endpoint    := [ '[' PORT ']' ] ref [ '[' PORT ']' ]
//! ref         := NAME | CLASS [ '(' args ')' ]        // inline anonymous
//! args        := arg (',' arg)*
//! arg         := [KEY] VALUE+                          // "BURST 32", "0"
//! ```
//!
//! Comments: `// line` and `/* block */`.

use std::error::Error;
use std::fmt;

/// A parse or graph-construction error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Lexical/syntactic problem at a line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// Element-level problem (unknown class, bad argument, bad port).
    Element {
        /// The element's name in the configuration.
        element: String,
        /// Description.
        message: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ConfigError::Element { element, message } => write!(f, "element {element}: {message}"),
        }
    }
}

impl Error for ConfigError {}

/// One configuration argument: an optional `KEY` plus its value text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arg {
    /// The keyword, for `KEY value` style arguments (`BURST 32`).
    pub key: Option<String>,
    /// The raw value text.
    pub value: String,
}

/// An element's argument list, with typed lookup helpers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// Arguments in declaration order.
    pub items: Vec<Arg>,
}

impl Args {
    /// Empty argument list.
    pub fn none() -> Self {
        Args::default()
    }

    /// Parses an argument list from text like `"PORT 0, BURST 32"`.
    pub fn parse(text: &str) -> Args {
        let mut items = Vec::new();
        for raw in split_args(text) {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            // "KEY value..." when the first token is ALL-CAPS and more follows.
            let mut parts = raw.splitn(2, char::is_whitespace);
            let first = parts.next().unwrap_or("");
            let rest = parts.next().map(str::trim).unwrap_or("");
            let is_key = !first.is_empty()
                && first
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
                && first.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && !rest.is_empty();
            if is_key {
                items.push(Arg {
                    key: Some(first.to_string()),
                    value: rest.to_string(),
                });
            } else {
                items.push(Arg {
                    key: None,
                    value: raw.to_string(),
                });
            }
        }
        Args { items }
    }

    /// Looks up a keyword argument's value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.items
            .iter()
            .find(|a| a.key.as_deref() == Some(key))
            .map(|a| a.value.as_str())
    }

    /// Positional argument `idx` (counting only un-keyed arguments).
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.items
            .iter()
            .filter(|a| a.key.is_none())
            .nth(idx)
            .map(|a| a.value.as_str())
    }

    /// Keyword argument parsed as an integer, with a default.
    pub fn get_u32(&self, key: &str, default: u32) -> Result<u32, ConfigError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ConfigError::Element {
                element: String::new(),
                message: format!("{key}: expected an integer, got {v:?}"),
            }),
        }
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no arguments were given.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Splits an argument string on top-level commas (respecting parens).
fn split_args(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// A declared element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declaration {
    /// Name (user-given, or `Class@N` for anonymous inline elements).
    pub name: String,
    /// Element class.
    pub class: String,
    /// Arguments.
    pub args: Args,
}

/// A directed connection between element ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// Index of the source declaration.
    pub from: usize,
    /// Source output port.
    pub from_port: u16,
    /// Index of the destination declaration.
    pub to: usize,
    /// Destination input port.
    pub to_port: u16,
}

/// A parsed configuration: declarations + connections.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConfigGraph {
    /// Elements, in declaration order.
    pub declarations: Vec<Declaration>,
    /// Port-to-port edges.
    pub connections: Vec<Connection>,
}

impl ConfigGraph {
    /// Parses a configuration text.
    pub fn parse(text: &str) -> Result<ConfigGraph, ConfigError> {
        Parser::new(text).parse()
    }

    /// Finds a declaration index by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.declarations.iter().position(|d| d.name == name)
    }

    /// Pretty-prints the configuration back to Click syntax.
    pub fn to_click(&self) -> String {
        let mut s = String::new();
        for d in &self.declarations {
            let args: Vec<String> = d
                .args
                .items
                .iter()
                .map(|a| match &a.key {
                    Some(k) => format!("{k} {}", a.value),
                    None => a.value.clone(),
                })
                .collect();
            s.push_str(&format!(
                "{} :: {}({});\n",
                d.name,
                d.class,
                args.join(", ")
            ));
        }
        for c in &self.connections {
            s.push_str(&format!(
                "{} [{}] -> [{}] {};\n",
                self.declarations[c.from].name,
                c.from_port,
                c.to_port,
                self.declarations[c.to].name
            ));
        }
        s
    }
}

struct Parser<'a> {
    text: &'a str,
    graph: ConfigGraph,
    anon_counter: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            text,
            graph: ConfigGraph::default(),
            anon_counter: 0,
        }
    }

    fn parse(mut self) -> Result<ConfigGraph, ConfigError> {
        let clean = strip_comments(self.text);
        for (stmt, line) in split_statements(&clean) {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.contains("->") {
                self.parse_connection(stmt, line)?;
            } else if stmt.contains("::") {
                self.parse_declaration(stmt, line)?;
            } else {
                return Err(ConfigError::Syntax {
                    line,
                    message: format!("expected a declaration or connection, got {stmt:?}"),
                });
            }
        }
        Ok(self.graph)
    }

    fn parse_declaration(&mut self, stmt: &str, line: usize) -> Result<usize, ConfigError> {
        let (name, rest) = stmt.split_once("::").ok_or_else(|| ConfigError::Syntax {
            line,
            message: "missing '::'".into(),
        })?;
        let name = name.trim();
        if name.is_empty() || !is_identifier(name) {
            return Err(ConfigError::Syntax {
                line,
                message: format!("bad element name {name:?}"),
            });
        }
        if self.graph.find(name).is_some() {
            return Err(ConfigError::Syntax {
                line,
                message: format!("duplicate element name {name:?}"),
            });
        }
        let (class, args) = parse_class_ref(rest.trim(), line)?;
        self.graph.declarations.push(Declaration {
            name: name.to_string(),
            class,
            args,
        });
        Ok(self.graph.declarations.len() - 1)
    }

    fn parse_connection(&mut self, stmt: &str, line: usize) -> Result<(), ConfigError> {
        let hops = split_arrows(stmt);
        if hops.len() < 2 {
            return Err(ConfigError::Syntax {
                line,
                message: "a connection needs at least two endpoints".into(),
            });
        }
        let mut prev: Option<(usize, u16)> = None;
        for hop in hops {
            let (in_port, refname, out_port) = parse_endpoint(hop.trim(), line)?;
            let idx = self.resolve_ref(&refname, line)?;
            if let Some((from, from_port)) = prev {
                self.graph.connections.push(Connection {
                    from,
                    from_port,
                    to: idx,
                    to_port: in_port.unwrap_or(0),
                });
            }
            prev = Some((idx, out_port.unwrap_or(0)));
        }
        Ok(())
    }

    /// Resolves an endpoint reference: an existing name, or an inline
    /// anonymous `Class(args)` which gets declared on the spot.
    fn resolve_ref(&mut self, r: &str, line: usize) -> Result<usize, ConfigError> {
        if let Some(idx) = self.graph.find(r) {
            return Ok(idx);
        }
        // Inline anonymous element: must look like a class reference
        // (leading uppercase) optionally with args.
        let looks_class = r.chars().next().is_some_and(|c| c.is_ascii_uppercase());
        if !looks_class {
            return Err(ConfigError::Syntax {
                line,
                message: format!("unknown element {r:?}"),
            });
        }
        let (class, args) = parse_class_ref(r, line)?;
        self.anon_counter += 1;
        let name = format!("{class}@{}", self.anon_counter);
        self.graph
            .declarations
            .push(Declaration { name, class, args });
        Ok(self.graph.declarations.len() - 1)
    }
}

/// Parses `Class` or `Class(args)`.
fn parse_class_ref(text: &str, line: usize) -> Result<(String, Args), ConfigError> {
    let text = text.trim();
    if let Some(open) = text.find('(') {
        if !text.ends_with(')') {
            return Err(ConfigError::Syntax {
                line,
                message: format!("unbalanced parentheses in {text:?}"),
            });
        }
        let class = text[..open].trim();
        if !is_identifier(class) {
            return Err(ConfigError::Syntax {
                line,
                message: format!("bad class name {class:?}"),
            });
        }
        let inner = &text[open + 1..text.len() - 1];
        Ok((class.to_string(), Args::parse(inner)))
    } else {
        if !is_identifier(text) {
            return Err(ConfigError::Syntax {
                line,
                message: format!("bad class name {text:?}"),
            });
        }
        Ok((text.to_string(), Args::none()))
    }
}

/// Parses `[p] name [p]` endpoint syntax. Returns (in_port, ref, out_port).
fn parse_endpoint(
    text: &str,
    line: usize,
) -> Result<(Option<u16>, String, Option<u16>), ConfigError> {
    let mut s = text.trim();
    let mut in_port = None;
    let mut out_port = None;
    if s.starts_with('[') {
        let close = s.find(']').ok_or_else(|| ConfigError::Syntax {
            line,
            message: "unclosed '[' in endpoint".into(),
        })?;
        in_port = Some(parse_port(&s[1..close], line)?);
        s = s[close + 1..].trim_start();
    }
    // Trailing [port] — but beware of '(...)' containing brackets is not a
    // thing in this grammar, so a simple rfind is safe when it follows ')'.
    if s.ends_with(']') {
        let open = s.rfind('[').ok_or_else(|| ConfigError::Syntax {
            line,
            message: "unmatched ']' in endpoint".into(),
        })?;
        out_port = Some(parse_port(&s[open + 1..s.len() - 1], line)?);
        s = s[..open].trim_end();
    }
    Ok((in_port, s.to_string(), out_port))
}

fn parse_port(text: &str, line: usize) -> Result<u16, ConfigError> {
    text.trim().parse().map_err(|_| ConfigError::Syntax {
        line,
        message: format!("bad port number {text:?}"),
    })
}

/// Splits a connection statement on top-level `->` (respecting parens).
fn split_arrows(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '(' => {
                depth += 1;
                cur.push('(');
                i += 1;
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(')');
                i += 1;
            }
            '-' if depth == 0 && i + 1 < chars.len() && chars[i + 1] == '>' => {
                out.push(std::mem::take(&mut cur));
                i += 2;
            }
            c => {
                cur.push(c);
                i += 1;
            }
        }
    }
    out.push(cur);
    out
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '@')
}

/// Removes `//` and `/* */` comments, preserving newlines for line counts.
fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
        } else if bytes[i] == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                if bytes[i] == '\n' {
                    out.push('\n');
                }
                i += 1;
            }
            i = (i + 2).min(bytes.len());
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    out
}

/// Splits on ';' and also on newlines that end a complete statement,
/// tracking line numbers. (Click allows both `a -> b;` and bare lines.)
fn split_statements(text: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut start_line = 1usize;
    let mut line = 1usize;
    let mut depth = 0usize;
    for c in text.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ';' if depth == 0 => {
                out.push((std::mem::take(&mut cur), start_line));
                start_line = line;
            }
            '\n' => {
                line += 1;
                // A newline ends a statement only if we're at depth 0 and
                // the statement doesn't end mid-arrow.
                let t = cur.trim_end().to_string();
                if depth == 0 && !t.is_empty() && !t.ends_with("->") && !t.ends_with("::") {
                    out.push((std::mem::take(&mut cur), start_line));
                }
                start_line = line;
                if !cur.trim().is_empty() {
                    cur.push(' ');
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push((cur, start_line));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FORWARDER: &str = r#"
        // Elements Definition
        input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
        output :: ToDPDKDevice(PORT 0, BURST 32);
        // Processing Graph
        input -> EtherMirror -> output
    "#;

    #[test]
    fn parses_the_paper_listing() {
        let g = ConfigGraph::parse(FORWARDER).unwrap();
        assert_eq!(g.declarations.len(), 3);
        assert_eq!(g.declarations[0].name, "input");
        assert_eq!(g.declarations[0].class, "FromDPDKDevice");
        assert_eq!(g.declarations[2].class, "EtherMirror");
        assert!(g.declarations[2].name.starts_with("EtherMirror@"));
        assert_eq!(g.connections.len(), 2);
        let c0 = g.connections[0];
        assert_eq!(g.declarations[c0.from].name, "input");
        assert_eq!(g.declarations[c0.to].class, "EtherMirror");
    }

    #[test]
    fn args_key_value_and_positional() {
        let a = Args::parse("PORT 0, N_QUEUES 1, BURST 32");
        assert_eq!(a.get("PORT"), Some("0"));
        assert_eq!(a.get("BURST"), Some("32"));
        assert_eq!(a.get_u32("BURST", 1).unwrap(), 32);
        assert_eq!(a.get_u32("MISSING", 7).unwrap(), 7);

        let a = Args::parse("0, 10.0.0.1, foo");
        assert_eq!(a.positional(0), Some("0"));
        assert_eq!(a.positional(1), Some("10.0.0.1"));
        assert_eq!(a.positional(2), Some("foo"));
    }

    #[test]
    fn nested_parens_in_args() {
        let a = Args::parse("PATTERN (1, 2), MODE x");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("PATTERN"), Some("(1, 2)"));
    }

    #[test]
    fn port_syntax() {
        let g = ConfigGraph::parse(
            "c :: Classifier(12/0800, -);\n d :: Discard;\n e :: Discard;\n c [0] -> d;\n c [1] -> e;",
        )
        .unwrap();
        assert_eq!(g.connections[0].from_port, 0);
        assert_eq!(g.connections[1].from_port, 1);
        let g2 = ConfigGraph::parse("a :: Tee; b :: Discard; a [1] -> [0] b;").unwrap();
        assert_eq!(g2.connections[0].from_port, 1);
        assert_eq!(g2.connections[0].to_port, 0);
    }

    #[test]
    fn comments_stripped() {
        let g = ConfigGraph::parse("/* block\n comment */ a :: Discard; // trailing\n").unwrap();
        assert_eq!(g.declarations.len(), 1);
    }

    #[test]
    fn duplicate_name_rejected() {
        let err = ConfigGraph::parse("a :: Discard; a :: Discard;").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn unknown_lowercase_ref_rejected() {
        let err = ConfigGraph::parse("a :: Discard; b -> a;").unwrap_err();
        assert!(err.to_string().contains("unknown element"));
    }

    #[test]
    fn chain_of_inline_elements() {
        let g = ConfigGraph::parse("a :: Null; b :: Null; a -> CheckIPHeader -> DecIPTTL -> b;")
            .unwrap();
        assert_eq!(g.declarations.len(), 4);
        assert_eq!(g.connections.len(), 3);
    }

    #[test]
    fn round_trip_via_to_click() {
        let g = ConfigGraph::parse(FORWARDER).unwrap();
        let text = g.to_click();
        let g2 = ConfigGraph::parse(&text).unwrap();
        assert_eq!(g.declarations.len(), g2.declarations.len());
        assert_eq!(g.connections.len(), g2.connections.len());
        for (a, b) in g.declarations.iter().zip(&g2.declarations) {
            assert_eq!(a.class, b.class);
        }
    }

    #[test]
    fn multiline_connection_with_trailing_arrow() {
        let g = ConfigGraph::parse("a :: Null;\nb :: Null;\na ->\n  b;").unwrap();
        assert_eq!(g.connections.len(), 1);
    }

    #[test]
    fn empty_config_ok() {
        let g = ConfigGraph::parse("  \n // nothing\n").unwrap();
        assert!(g.declarations.is_empty());
    }
}
