//! The framework's `Packet` metadata class and its object pool.
//!
//! Under the **Copying** model, every received packet gets a `Packet`
//! object from this pool; the useful `rte_mbuf` fields are copied in and
//! the 48-byte annotation area lives here (paper §2.2 "Copying"). The
//! pool recycles FIFO under steady forwarding, so object headers are cold
//! by the time they are reused — the cache-eviction cost X-Change (and,
//! via scalar replacement, the static-graph plan) eliminates.

use crate::StructLayout;
use pm_mem::{AccessKind, AddressSpace, Cost, MemoryHierarchy, Region};
use std::collections::VecDeque;

/// Builds the default FastClick-style `Packet` class layout.
///
/// Field order mirrors the C++ class: buffer bookkeeping first, header
/// pointers and timestamp next, the annotation union last. The hot set of
/// a typical router (`data_ptr`, `net_hdr`, `dst_ip_anno`, `paint_anno`)
/// straddles cache lines in this default order — which is exactly what
/// the reordering pass exploits.
pub fn default_packet_layout() -> StructLayout {
    StructLayout::packed(
        "Packet",
        &[
            // -- buffer bookkeeping + driver-written fields (X-Change
            //    writes these directly; names match `MetaField`) --
            ("use_count", 4),
            ("pkt_len", 4),
            ("data_ptr", 8),
            ("buf_addr", 8),
            ("end", 8),
            ("mbuf", 8),
            ("data_len", 2),
            ("port", 2),
            ("vlan_tci", 2),
            ("rss_hash", 4),
            ("mac_hdr", 8),
            // -- line boundary at 64 --
            ("net_hdr", 8),
            ("trans_hdr", 8),
            ("timestamp", 8),
            ("next", 8),
            ("prev", 8),
            ("device", 8),
            ("aggregate", 4),
            ("packet_type", 4),
            ("reserved", 8),
            // -- the 48-byte annotation area, at the tail like Click's
            //    Packet class (this is what the reordering pass hoists) --
            ("dst_ip_anno", 4),
            ("paint_anno", 1),
            ("ttl_anno", 1),
            ("vlan_anno", 2),
            ("flow_anno", 4),
            ("anno_w1", 8),
            ("anno_w2", 8),
            ("anno_w3", 8),
            ("anno_w4", 8),
            ("anno_w5", 8),
            ("anno_w6", 8),
        ],
    )
}

/// The subset of `Packet` fields written when converting from an mbuf
/// (the Copying model's per-packet copy).
pub const COPY_FIELDS: [&str; 11] = [
    "use_count",
    "pkt_len",
    "data_ptr",
    "buf_addr",
    "end",
    "mbuf",
    "data_len",
    "port",
    "rss_hash",
    "mac_hdr",
    "timestamp",
];

/// A FIFO-cycling pool of `Packet` objects.
#[derive(Debug)]
pub struct ClickPool {
    region: Region,
    stride: u64,
    free: VecDeque<u32>,
    lifo: bool,
    n: u32,
}

impl ClickPool {
    /// Creates a pool of `n` objects shaped like `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(space: &mut AddressSpace, n: u32, layout: &StructLayout) -> Self {
        Self::with_order(space, n, layout, false)
    }

    /// Like [`Self::new`], with `lifo = true` selecting stack recycling
    /// (most-recently-freed object reused first — the warm-pool ablation).
    pub fn with_order(space: &mut AddressSpace, n: u32, layout: &StructLayout, lifo: bool) -> Self {
        assert!(n > 0, "empty packet pool");
        let stride = u64::from(layout.size_lines());
        // Long-running pools interleave frees from many paths, so the
        // allocation order is not a prefetchable stream; a deterministic
        // shuffle models that.
        let mut order: Vec<u32> = (0..n).collect();
        let mut rng = pm_sim::SplitMix64::new(0x9001);
        for i in (1..order.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        ClickPool {
            region: space.alloc_pages(stride * u64::from(n)),
            stride,
            free: order.into(),
            lifo,
            n,
        }
    }

    /// Pool capacity.
    pub fn capacity(&self) -> u32 {
        self.n
    }

    /// Free objects.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Object stride in bytes (whole cache lines).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Fraction of a pool-object miss's latency the core actually stalls
    /// for: object headers of different packets are independent loads, so
    /// memory-level parallelism across the burst hides part of it.
    const MLP_EXPOSURE: f64 = 0.30;

    fn scaled(c: Cost) -> Cost {
        Cost {
            instructions: c.instructions,
            cycles: c.cycles * Self::MLP_EXPOSURE,
            uncore_ns: c.uncore_ns * Self::MLP_EXPOSURE,
        }
    }

    /// Allocates an object: returns its base address, charging the
    /// free-list load (the object's header line — cold after a full pool
    /// cycle, which is the Copying model's hidden per-packet LLC load).
    pub fn alloc(&mut self, core: usize, mem: &mut MemoryHierarchy) -> (Option<u64>, Cost) {
        match self.free.pop_front() {
            Some(slot) => {
                let addr = self.region.base + u64::from(slot) * self.stride;
                let cost =
                    Self::scaled(mem.access(core, addr, 8, AccessKind::Load)) + Cost::compute(4);
                (Some(addr), cost)
            }
            None => (None, Cost::compute(4)),
        }
    }

    /// Frees an object by address, charging the free-list store.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not an object base from this pool.
    pub fn free(&mut self, core: usize, mem: &mut MemoryHierarchy, addr: u64) -> Cost {
        assert!(
            self.region.contains(addr) && (addr - self.region.base).is_multiple_of(self.stride),
            "not a pool object address: {addr:#x}"
        );
        let slot = ((addr - self.region.base) / self.stride) as u32;
        debug_assert!(!self.free.contains(&slot), "double free of packet object");
        if self.lifo {
            self.free.push_front(slot);
        } else {
            self.free.push_back(slot);
        }
        Self::scaled(mem.access(core, addr, 8, AccessKind::Store)) + Cost::compute(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_shape() {
        let l = default_packet_layout();
        // Three cache lines: the C++ class is ~170 bytes.
        assert!(l.size() > 128 && l.size() <= 192, "size {}", l.size());
        assert_eq!(l.size_lines(), 192);
        // The copy fields exist.
        for f in COPY_FIELDS {
            assert!(l.field(f).is_some(), "{f} missing");
        }
        // The router's hot set spans more than one line by default.
        assert!(
            l.lines_touched(&["data_ptr", "net_hdr", "dst_ip_anno", "paint_anno"]) >= 2,
            "hot set should straddle lines pre-reorder"
        );
    }

    #[test]
    fn reordering_collapses_hot_set() {
        let l = default_packet_layout();
        let r = l.reordered(&["data_ptr", "net_hdr", "dst_ip_anno", "paint_anno"]);
        assert_eq!(
            r.lines_touched(&["data_ptr", "net_hdr", "dst_ip_anno", "paint_anno"]),
            1
        );
    }

    #[test]
    fn pool_fifo_cycles_addresses() {
        let mut space = AddressSpace::new();
        let mut mem = MemoryHierarchy::skylake(1);
        let layout = default_packet_layout();
        let mut pool = ClickPool::new(&mut space, 4, &layout);
        let (a, _) = pool.alloc(0, &mut mem);
        let a = a.unwrap();
        pool.free(0, &mut mem, a);
        // FIFO: the freed object is reused only after the others.
        let mut seen = vec![a];
        for _ in 0..3 {
            let (x, _) = pool.alloc(0, &mut mem);
            let x = x.unwrap();
            assert!(!seen.contains(&x), "FIFO must not reuse immediately");
            seen.push(x);
        }
        let (again, _) = pool.alloc(0, &mut mem);
        assert_eq!(again.unwrap(), a, "full cycle returns to the first object");
    }

    #[test]
    fn pool_exhaustion() {
        let mut space = AddressSpace::new();
        let mut mem = MemoryHierarchy::skylake(1);
        let layout = default_packet_layout();
        let mut pool = ClickPool::new(&mut space, 2, &layout);
        assert!(pool.alloc(0, &mut mem).0.is_some());
        assert!(pool.alloc(0, &mut mem).0.is_some());
        assert!(pool.alloc(0, &mut mem).0.is_none());
    }

    #[test]
    #[should_panic(expected = "not a pool object address")]
    fn foreign_address_rejected() {
        let mut space = AddressSpace::new();
        let mut mem = MemoryHierarchy::skylake(1);
        let layout = default_packet_layout();
        let mut pool = ClickPool::new(&mut space, 2, &layout);
        pool.free(0, &mut mem, 0xDEAD_0000);
    }
}
