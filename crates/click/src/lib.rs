//! A FastClick-like modular packet-processing framework for
//! PacketMill-rs.
//!
//! Network functions are composed from **elements** connected into a
//! directed graph by a configuration written in the Click language
//! (paper Listing 3):
//!
//! ```text
//! input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
//! output :: ToDPDKDevice(PORT 0, BURST 32);
//! input -> EtherMirror -> output
//! ```
//!
//! The crate provides:
//!
//! * [`config`] — a lexer + recursive-descent parser for that language;
//! * [`element`] — the [`Element`] trait, the charged execution context
//!   ([`Ctx`]), and the per-packet handle ([`Pkt`]);
//! * [`packet`] — the framework's `Packet` metadata class: its
//!   reorderable [`StructLayout`] and the FIFO-cycling object pool whose
//!   cache behaviour the Copying model inherits;
//! * [`plan`] — the [`ExecPlan`]: which optimizations are active
//!   (dispatch mode, constant embedding, static graph/SROA, metadata
//!   model, packet layout). `pm-compile`'s passes produce these;
//! * [`graph`] — configuration graph → runtime graph construction with
//!   an element registry and validation;
//! * [`batch`] — the vector and linked-list packet-chaining models
//!   (paper §3.1: X-Change frees the application to pick either);
//! * [`runtime`] — the per-core push-path executor that walks the graph
//!   for every packet, charging dispatch / parameter / state / metadata
//!   costs according to the active plan.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod config;
pub mod element;
pub mod graph;
pub mod packet;
pub mod plan;
pub mod runtime;

pub use batch::{BatchArena, LinkedBatch, VectorBatch};
pub use config::{Arg, Args, ConfigError, ConfigGraph, Connection, Declaration};
pub use element::{Action, Annos, Ctx, Element, ElementKind, FieldProfile, Pkt, TableStats};
pub use graph::{ElementRegistry, Graph};
pub use packet::{default_packet_layout, ClickPool};
pub use plan::{DispatchMode, ExecPlan};
pub use runtime::{GraphRuntime, PacketFate};

// Re-exported so element implementations only need pm-click.
pub use pm_dpdk::{MetadataModel, StructLayout};
