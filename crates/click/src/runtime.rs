//! The per-core graph executor.
//!
//! For every packet the runtime walks the push path from a source's
//! successor to a sink, invoking each element's real `process` code and
//! charging, per hop, exactly what the active [`ExecPlan`] implies:
//!
//! * **dispatch** — vtable load + indirect-call penalty (virtual), a
//!   direct call (devirtualized), or nothing (fully inlined);
//! * **graph walk** — a next-hop connection-descriptor load unless the
//!   graph is embedded statically;
//! * **parameters** — a load of the element's configuration words unless
//!   constants are embedded;
//! * **element state** — one touch of the element object (arena-packed
//!   under the static graph, heap-scattered otherwise);
//! * **`Packet` metadata** — per the metadata model: pool-alloc + copy
//!   (Copying), cast + annotation init (Overlaying), nothing (X-Change —
//!   the driver already wrote the fields), or register promotion (SROA
//!   under static graph + Copying).

use crate::element::{Action, Ctx, ElementKind, Pkt};
use crate::graph::Graph;
use crate::packet::{ClickPool, COPY_FIELDS};
use crate::plan::{DispatchMode, ExecPlan};
use pm_dpdk::{MetadataModel, RxDesc};
use pm_mem::{
    AccessKind, AccessProgram, AddressSpace, Cost, MemoryHierarchy, ProgramBuilder, Region,
    ScatterAlloc, ScopeId, SCOPE_METADATA,
};

/// Where a packet ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Reached a sink; transmit `len` bytes via the sink element.
    Tx {
        /// Index of the sink element reached.
        sink: usize,
        /// Frame length to transmit.
        len: usize,
    },
    /// Dropped at the given element.
    Dropped {
        /// Index of the dropping element.
        at: usize,
    },
}

/// Per-runtime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Packets that entered the graph.
    pub processed: u64,
    /// Packets dropped inside the graph.
    pub dropped: u64,
    /// Packets that reached a sink.
    pub to_tx: u64,
}

/// Maximum hops per packet (guards against accidental config cycles).
const MAX_HOPS: usize = 64;

/// Default Click packet-object pool size (objects).
const CLICK_POOL_OBJECTS: u32 = 131072;

/// The executable form of a graph under a specific plan.
pub struct GraphRuntime {
    /// The element graph (public so the engine can inspect sources).
    pub graph: Graph,
    plan: ExecPlan,
    state_regions: Vec<Region>,
    vtable_addrs: Vec<u64>,
    pool: ClickPool,
    stack_region: Region,
    stats: RuntimeStats,
    /// Per-element (packets seen, packets dropped here) — the Click
    /// read-handler equivalent.
    element_counts: Vec<(u64, u64)>,
    /// Attribution scopes per element, registered lazily on the first run
    /// against a hierarchy with profiling enabled.
    element_scopes: Option<Vec<ScopeId>>,
    /// Distinct cache lines (sorted) holding the Copying-model
    /// bookkeeping fields, precomputed from the packet layout so the
    /// per-packet conversion does not re-search field names.
    copy_lines: Vec<u64>,
    /// Per-element dispatch access programs (vtable load, call penalty,
    /// bookkeeping, state touch — the whole `charge_hop` charge set as
    /// one program over bases `[vtable, state]`). Built lazily on first
    /// run because the charges bake in the hierarchy's latency model.
    hop_progs: Option<Vec<AccessProgram>>,
    /// The Copying-model conversion program (mbuf load + bookkeeping-line
    /// stores + conversion work) over bases `[mbuf, packet]`. Rebuilt
    /// when the packet layout changes; `None` until first use.
    copy_prog: Option<AccessProgram>,
    /// Injected per-element slow-down windows
    /// `(from, until, factor_x1000)`, indexed by element. `None` (the
    /// default) keeps the hop loop untouched.
    slowdowns: Option<Vec<Vec<(pm_sim::SimTime, pm_sim::SimTime, u32)>>>,
    /// Per-packet hop log `(element idx, cost delta)` for the flight
    /// recorder's lifecycle trace. `None` (the default) keeps the hop
    /// loop untouched; recording never alters charges.
    span_log: Option<Vec<(usize, Cost)>>,
}

impl std::fmt::Debug for GraphRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphRuntime")
            .field("elements", &self.graph.len())
            .field("plan", &self.plan.label())
            .field("stats", &self.stats)
            .finish()
    }
}

impl GraphRuntime {
    /// Prepares a graph for execution under `plan`, placing element state
    /// per the plan (arena if static, scattered heap otherwise) and
    /// running every element's `setup`.
    pub fn new(mut graph: Graph, plan: ExecPlan, space: &mut AddressSpace) -> Self {
        let n_elements = graph.len();
        // Element object placement.
        let state_regions: Vec<Region> = if plan.static_graph {
            // Arena: elements contiguous in graph order, like statically
            // declared objects in .data.
            graph
                .elements
                .iter()
                .map(|e| space.alloc(e.element.state_size().max(64)))
                .collect()
        } else {
            // Heap-scattered, like one-by-one `new` at initialization.
            let heap = space.reserve_heap(64 * 1024 * 1024);
            let mut scatter = ScatterAlloc::new(heap, 0x5eed);
            graph
                .elements
                .iter()
                .map(|e| scatter.alloc(e.element.state_size().max(64)))
                .collect()
        };

        // One vtable address per element class (shared, like C++). Class
        // names are interned as indices into a scratch list borrowed from
        // the graph — no allocation outlives this constructor.
        let vtable_region = space.alloc(4096);
        let mut classes: Vec<&str> = Vec::new();
        let vtable_addrs = graph
            .elements
            .iter()
            .map(|e| {
                let idx = classes
                    .iter()
                    .position(|c| *c == e.class.as_str())
                    .unwrap_or_else(|| {
                        classes.push(e.class.as_str());
                        classes.len() - 1
                    });
                vtable_region.at((idx as u64) * 64)
            })
            .collect();
        drop(classes);

        // Large element state (tables, arrays).
        for e in &mut graph.elements {
            e.element.setup(space);
        }

        let pool = ClickPool::with_order(
            space,
            CLICK_POOL_OBJECTS,
            &plan.packet_layout,
            plan.lifo_packet_pool,
        );
        let stack_region = space.alloc(256);

        let element_counts = vec![(0, 0); n_elements];
        let copy_lines = Self::copy_lines_of(&plan.packet_layout);
        GraphRuntime {
            graph,
            plan,
            state_regions,
            vtable_addrs,
            pool,
            stack_region,
            stats: RuntimeStats::default(),
            element_counts,
            element_scopes: None,
            copy_lines,
            hop_progs: None,
            copy_prog: None,
            slowdowns: None,
            span_log: None,
        }
    }

    /// Enables (or disables) per-packet hop-span recording. While on,
    /// each [`Self::run`] rebuilds the log of `(element, cost)` hops the
    /// packet traversed, drained by [`Self::take_spans`]. Recording reads
    /// costs the hop loop already computes — it charges nothing and
    /// performs no simulated accesses.
    pub fn set_span_recording(&mut self, on: bool) {
        self.span_log = on.then(Vec::new);
    }

    /// Drains the hop spans of the last [`Self::run`] into `out` as
    /// `(element label, cost delta)` in traversal order. Labels match the
    /// attribution scopes: `Class(name)`, or the raw `Class@N` form for
    /// anonymous elements. No-op while recording is off.
    pub fn take_spans(&mut self, out: &mut Vec<(String, Cost)>) {
        if let Some(log) = self.span_log.as_mut() {
            for &(idx, cost) in log.iter() {
                let e = &self.graph.elements[idx];
                let label = if e.name.contains('@') {
                    e.name.clone()
                } else {
                    format!("{}({})", e.class, e.name)
                };
                out.push((label, cost));
            }
            log.clear();
        }
    }

    /// Compiles `plan`'s per-element slow-down events against this
    /// graph: each element's windows are resolved once (matched by class
    /// or instance name), so the hop loop does only an indexed lookup.
    /// A plan with no matching slow-downs resets to the cost-free
    /// default.
    pub fn set_fault_slowdowns(&mut self, plan: &pm_sim::FaultPlan) {
        let per_element: Vec<_> = self
            .graph
            .elements
            .iter()
            .map(|e| plan.slowdown_windows(&e.class, &e.name))
            .collect();
        self.slowdowns = per_element
            .iter()
            .any(|w| !w.is_empty())
            .then_some(per_element);
    }

    /// The injected extra cost for element `idx` on a packet that
    /// arrived at `at`: the hop's charged work scaled by `factor − 1`.
    fn slowdown_extra(&self, idx: usize, at: pm_sim::SimTime, spent: Cost) -> Option<Cost> {
        let windows = &self.slowdowns.as_ref()?[idx];
        windows
            .iter()
            .find(|(from, until, factor)| *from <= at && at < *until && *factor > 1000)
            .map(|&(_, _, factor)| spent.scaled(f64::from(factor - 1000) / 1000.0))
    }

    /// Sorted distinct line indices holding [`COPY_FIELDS`] under `layout`.
    fn copy_lines_of(layout: &crate::StructLayout) -> Vec<u64> {
        let mut lines: Vec<u64> = COPY_FIELDS
            .iter()
            .map(|f| u64::from(layout.line_of(f)))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// The active plan.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// Replaces the plan's packet layout (after a reordering pass).
    pub fn set_packet_layout(&mut self, layout: crate::StructLayout) {
        self.copy_lines = Self::copy_lines_of(&layout);
        self.plan.packet_layout = layout;
        // The conversion program bakes in the bookkeeping lines.
        self.copy_prog = None;
    }

    /// Counters.
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// Per-element `(name, packets, drops)` rows, in graph order — the
    /// Click read-handler equivalent (`element.count`).
    pub fn element_stats(&self) -> Vec<(String, u64, u64)> {
        self.graph
            .elements
            .iter()
            .zip(&self.element_counts)
            .map(|(e, &(seen, dropped))| (e.name.clone(), seen, dropped))
            .collect()
    }

    /// Table occupancy/policy counters for every table-owning element,
    /// in graph order, with instance names filled in.
    pub fn table_stats(&self) -> Vec<crate::element::TableStats> {
        self.graph
            .elements
            .iter()
            .filter_map(|e| {
                e.element.table_stats().map(|mut t| {
                    t.name = e.name.clone();
                    t
                })
            })
            .collect()
    }

    /// The simulated regions backing element tables (for hugepage
    /// remapping by the engine).
    pub fn table_regions(&self) -> Vec<pm_mem::Region> {
        self.graph
            .elements
            .iter()
            .flat_map(|e| e.element.table_regions())
            .collect()
    }

    /// Registers one attribution scope per element (idempotent; no-op
    /// until the hierarchy has profiling enabled). Named elements render
    /// as `Class(name)`, anonymous ones keep their `Class@N` form.
    fn ensure_scopes(&mut self, mem: &mut MemoryHierarchy) {
        if !mem.attribution_enabled() || self.element_scopes.is_some() {
            return;
        }
        self.element_scopes = Some(
            self.graph
                .elements
                .iter()
                .map(|e| {
                    let label = if e.name.contains('@') {
                        e.name.clone()
                    } else {
                        format!("{}({})", e.class, e.name)
                    };
                    mem.register_scope(&label)
                })
                .collect(),
        );
    }

    /// The attribution scope of element `idx`, or `None` while profiling
    /// is off. Used by the dataplane to tag its source-side entry work.
    pub fn element_scope(&mut self, mem: &mut MemoryHierarchy, idx: usize) -> Option<ScopeId> {
        self.ensure_scopes(mem);
        self.element_scopes.as_ref().map(|s| s[idx])
    }

    /// Attributes the cost accumulated since `before` (plus one packet)
    /// to `scope`.
    fn attribute_hop(ctx: &mut Ctx<'_>, scope: Option<ScopeId>, before: Cost) {
        if let Some(s) = scope {
            ctx.mem.profile_charge_at(s, ctx.cost - before);
            ctx.mem.profile_packets_at(s, 1);
        }
    }

    /// Performs the metadata-model work for a packet entering the
    /// framework and returns the address of its `Packet` object.
    pub fn begin_packet(&mut self, ctx: &mut Ctx<'_>, desc: &RxDesc) -> u64 {
        let before = ctx.cost;
        let prev = ctx.mem.set_scope(SCOPE_METADATA);
        let addr = self.begin_packet_inner(ctx, desc);
        ctx.mem.profile_charge_at(SCOPE_METADATA, ctx.cost - before);
        ctx.mem.profile_packets_at(SCOPE_METADATA, 1);
        ctx.mem.set_scope(prev);
        addr
    }

    fn begin_packet_inner(&mut self, ctx: &mut Ctx<'_>, desc: &RxDesc) -> u64 {
        match self.plan.metadata_model {
            MetadataModel::Copying => {
                if self.plan.sroa_active() {
                    // Scalar replacement: the conversion lives in
                    // registers / one hot stack line.
                    ctx.cost +=
                        ctx.mem
                            .access(ctx.core, self.stack_region.base, 16, AccessKind::Store);
                    // The conversion work (field moves, annotation init)
                    // still executes — in registers. Only the memory
                    // traffic and pool management disappear.
                    ctx.compute(118);
                    self.stack_region.base
                } else {
                    // Allocate a Packet object and copy the useful mbuf
                    // fields into it (two conversions total, §2.2).
                    let (addr, c) = self.pool.alloc(ctx.core, ctx.mem);
                    ctx.charge(c);
                    let addr = addr.unwrap_or(self.stack_region.base);
                    // Mbuf load + bookkeeping-line stores + conversion
                    // work, as one precompiled program (annotation lines
                    // are touched lazily by the elements that use them,
                    // which is why reordering them matters).
                    let copy_lines = &self.copy_lines;
                    // `no_memoize` even with delta-class replay: Packet
                    // objects come from a FIFO pool (the engine's
                    // default), so successive bases cycle cold through
                    // the whole pool and the L1-residency proof would
                    // fail every packet — the arming probe stays off.
                    let prog = self.copy_prog.get_or_insert_with(|| {
                        let mut b = ProgramBuilder::new().no_memoize().load(0, 0, 32);
                        for &l in copy_lines {
                            b = b.store(1, l as u32 * 64, 64);
                        }
                        b.compute(95).build()
                    });
                    ctx.mem
                        .run_program(ctx.core, prog, &[desc.meta_addr, addr], &mut ctx.cost);
                    addr
                }
            }
            MetadataModel::Overlaying => {
                // Cast the mbuf to a Packet and initialize annotations in
                // the area following the 128-B mbuf fields.
                let addr = desc.meta_addr + 128;
                ctx.cost += ctx.mem.access(ctx.core, addr, 16, AccessKind::Store);
                ctx.compute(30);
                addr
            }
            MetadataModel::XChange => {
                // The driver already wrote the needed fields in place.
                ctx.compute(6);
                desc.meta_addr
            }
        }
    }

    /// Releases the `Packet` object after the packet leaves the graph.
    pub fn end_packet(&mut self, ctx: &mut Ctx<'_>, meta_addr: u64) {
        if self.plan.metadata_model == MetadataModel::Copying
            && !self.plan.sroa_active()
            && meta_addr != self.stack_region.base
        {
            let before = ctx.cost;
            let prev = ctx.mem.set_scope(SCOPE_METADATA);
            let c = self.pool.free(ctx.core, ctx.mem, meta_addr);
            ctx.charge(c);
            ctx.mem.profile_charge_at(SCOPE_METADATA, ctx.cost - before);
            ctx.mem.set_scope(prev);
        }
    }

    /// Pushes one packet from `source` through the graph.
    ///
    /// # Panics
    ///
    /// Panics if the walk exceeds `MAX_HOPS` (64 — a configuration cycle).
    pub fn run(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>, source: usize) -> PacketFate {
        self.ensure_scopes(ctx.mem);
        self.stats.processed += 1;
        if let Some(log) = self.span_log.as_mut() {
            log.clear();
        }
        let (mut idx, _port) = self.graph.entry_of(source);
        for _ in 0..MAX_HOPS {
            // Everything charged during this hop — dispatch, state touch,
            // the element's own work, and next-hop resolution — is
            // attributed to the executing element.
            let hop_start = ctx.cost;
            let scope = self.element_scopes.as_ref().map(|s| s[idx]);
            if let Some(s) = scope {
                ctx.mem.set_scope(s);
            }
            self.charge_hop(ctx, idx);
            ctx.state = self.state_regions[idx];
            self.element_counts[idx].0 += 1;
            let el = &mut self.graph.elements[idx].element;
            let kind = el.kind();
            let action = el.process(ctx, pkt);
            if self.slowdowns.is_some() {
                // Injected slow-down: inflate this hop's charge before
                // attribution so the profile ledger still reconciles.
                if let Some(extra) =
                    self.slowdown_extra(idx, pkt.desc.arrival, ctx.cost - hop_start)
                {
                    ctx.charge(extra);
                }
            }
            match action {
                Action::Drop => {
                    self.stats.dropped += 1;
                    self.element_counts[idx].1 += 1;
                    if let Some(log) = self.span_log.as_mut() {
                        log.push((idx, ctx.cost - hop_start));
                    }
                    Self::attribute_hop(ctx, scope, hop_start);
                    return PacketFate::Dropped { at: idx };
                }
                Action::Forward(p) => {
                    if kind == ElementKind::Sink {
                        self.stats.to_tx += 1;
                        if let Some(log) = self.span_log.as_mut() {
                            log.push((idx, ctx.cost - hop_start));
                        }
                        Self::attribute_hop(ctx, scope, hop_start);
                        return PacketFate::Tx {
                            sink: idx,
                            len: pkt.len,
                        };
                    }
                    // Next-hop resolution: a connection-descriptor load on
                    // the dynamic graph; free when embedded statically.
                    if !self.plan.static_graph {
                        let conn = self.state_regions[idx];
                        ctx.cost += ctx.mem.access(
                            ctx.core,
                            conn.base + 16 + u64::from(p) * 8,
                            8,
                            AccessKind::Load,
                        );
                        ctx.compute(2);
                    }
                    if let Some(log) = self.span_log.as_mut() {
                        log.push((idx, ctx.cost - hop_start));
                    }
                    Self::attribute_hop(ctx, scope, hop_start);
                    match self.graph.adj[idx].get(p as usize).copied().flatten() {
                        Some((next, _in_port)) => idx = next,
                        None => {
                            // Validated graphs cannot reach this; treat a
                            // stray port as a drop rather than a crash.
                            self.stats.dropped += 1;
                            return PacketFate::Dropped { at: idx };
                        }
                    }
                }
            }
        }
        panic!("packet exceeded {MAX_HOPS} hops: configuration cycle?");
    }

    /// Resolves element `idx`'s dispatch charge set — vtable load, call
    /// penalty, per-hop bookkeeping, and state touch — as one access
    /// program over bases `[vtable, state]`. These fixed-base programs
    /// are the hierarchy's hottest signature-replay site: a hop whose
    /// two lines stayed L1-MRU since the last packet costs no per-line
    /// walk at all.
    #[inline]
    fn charge_hop(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        if self.hop_progs.is_none() {
            self.hop_progs = Some(self.build_hop_progs(ctx.mem.latency_model()));
        }
        let prog = &self.hop_progs.as_ref().unwrap()[idx];
        let bases = [self.vtable_addrs[idx], self.state_regions[idx].base];
        ctx.mem.run_program(ctx.core, prog, &bases, &mut ctx.cost);
    }

    /// Compiles one dispatch program per element (pay at setup, not per
    /// packet). The step sequence is charge-for-charge the former inline
    /// `charge_hop` body; `lat` values are baked into the charge steps,
    /// which is why construction waits for the first run against a
    /// hierarchy.
    fn build_hop_progs(&self, lat: &pm_mem::LatencyModel) -> Vec<AccessProgram> {
        (0..self.graph.len())
            .map(|idx| {
                let mut b = ProgramBuilder::new();
                b = match self.plan.dispatch {
                    DispatchMode::Virtual => b.load(0, 0, 8).charge(lat.virtual_call()),
                    DispatchMode::Direct => b.charge(lat.direct_call()),
                    DispatchMode::Inlined => b,
                };
                // Per-hop bookkeeping (port push, batch/list management,
                // bounds checks); constant embedding folds branches away,
                // and the fully inlined static graph lets the compiler
                // melt most of it.
                let hop_instr = match (self.plan.dispatch, self.plan.constants_embedded) {
                    // Full inlining removes calls, not the per-hop work
                    // itself (the paper's static graph keeps ~the same
                    // instruction count; its gains are locality, Table 1).
                    (DispatchMode::Inlined, true) => 44,
                    (DispatchMode::Inlined, false) => 48,
                    (_, true) => 34,
                    (_, false) => 38,
                };
                b = b.compute(hop_instr);
                if !self.plan.constants_embedded {
                    // Parameter-dependent branches the compiler cannot
                    // fold, then the full parameter-word load.
                    b = b.charge(Cost::stall_cycles(1.2));
                    let words = self.graph.elements[idx].element.param_loads().max(1);
                    b.load(1, 0, words * 8).compute(words * 3)
                } else {
                    // The element object itself is still touched
                    // (counters etc.).
                    b.load(1, 8, 8)
                }
                .build()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigGraph;
    use crate::element::Annos;
    use crate::graph::ElementRegistry;
    use pm_mem::{Cost, MemoryHierarchy};

    const FWD: &str = "in :: FromDPDKDevice(0); out :: ToDPDKDevice(0); in -> Null -> out;";

    fn rt(plan: ExecPlan) -> (GraphRuntime, AddressSpace) {
        let cfg = ConfigGraph::parse(FWD).unwrap();
        let g = Graph::build(&cfg, &ElementRegistry::with_basics()).unwrap();
        let mut space = AddressSpace::new();
        (GraphRuntime::new(g, plan, &mut space), space)
    }

    fn desc() -> RxDesc {
        RxDesc {
            buf_id: 0,
            len: 64,
            rss_hash: 0,
            arrival: pm_sim::SimTime::ZERO,
            gen: pm_sim::SimTime::ZERO,
            seq: 0,
            data_addr: 0x8_0000,
            meta_addr: 0x9_0000,
            xslot: None,
        }
    }

    fn push_one(rtm: &mut GraphRuntime, mem: &mut MemoryHierarchy) -> (PacketFate, Cost) {
        let plan = rtm.plan().clone();
        let mut ctx = Ctx::new(0, mem, &plan);
        let d = desc();
        let meta = rtm.begin_packet(&mut ctx, &d);
        let mut data = vec![0u8; 64];
        let mut pkt = Pkt {
            data: &mut data,
            len: 64,
            desc: d,
            meta_addr: meta,
            annos: Annos::default(),
        };
        let fate = rtm.run(&mut ctx, &mut pkt, 0);
        rtm.end_packet(&mut ctx, meta);
        (fate, ctx.take_cost())
    }

    #[test]
    fn forwarder_reaches_sink() {
        let (mut rtm, _s) = rt(ExecPlan::vanilla(MetadataModel::Copying));
        let mut mem = MemoryHierarchy::skylake(1);
        let (fate, cost) = push_one(&mut rtm, &mut mem);
        assert!(matches!(fate, PacketFate::Tx { len: 64, .. }));
        assert!(cost.instructions > 0);
        assert_eq!(rtm.stats().to_tx, 1);
    }

    #[test]
    fn drop_config_drops() {
        let cfg = ConfigGraph::parse("in :: FromDPDKDevice(0); in -> Discard;").unwrap();
        let g = Graph::build(&cfg, &ElementRegistry::with_basics()).unwrap();
        let mut space = AddressSpace::new();
        let mut rtm = GraphRuntime::new(g, ExecPlan::vanilla(MetadataModel::Copying), &mut space);
        let mut mem = MemoryHierarchy::skylake(1);
        let (fate, _) = push_one(&mut rtm, &mut mem);
        assert!(matches!(fate, PacketFate::Dropped { .. }));
        assert_eq!(rtm.stats().dropped, 1);
    }

    #[test]
    fn optimized_plans_cost_less() {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut measure = |plan: ExecPlan| {
            let (mut rtm, _s) = rt(plan);
            // Warm up, then measure steady state.
            let mut last = Cost::ZERO;
            for _ in 0..2048 {
                let (_, c) = push_one(&mut rtm, &mut mem);
                last = c;
            }
            last
        };
        let vanilla = measure(ExecPlan::vanilla(MetadataModel::Copying));
        let devirt = measure(ExecPlan::devirtualized(MetadataModel::Copying));
        let constants = measure(ExecPlan::constants(MetadataModel::Copying));
        let all = measure(ExecPlan::all_source_opts(MetadataModel::Copying));
        let f = pm_sim::Frequency::from_ghz(3.0);
        assert!(devirt.time(f) < vanilla.time(f), "devirt should win");
        assert!(constants.time(f) < vanilla.time(f), "constants should win");
        assert!(all.time(f) < devirt.time(f), "all should beat devirt");
        assert!(all.time(f) < constants.time(f), "all should beat constants");
    }

    #[test]
    fn static_graph_bypasses_packet_pool() {
        let mut mem = MemoryHierarchy::skylake(1);
        let (mut rtm, _s) = rt(ExecPlan::static_graph(MetadataModel::Copying));
        for _ in 0..100 {
            push_one(&mut rtm, &mut mem);
        }
        assert_eq!(
            rtm.pool.available(),
            rtm.pool.capacity() as usize,
            "SROA must never touch the pool"
        );
    }

    #[test]
    fn copying_cycles_packet_pool() {
        let mut mem = MemoryHierarchy::skylake(1);
        let (mut rtm, _s) = rt(ExecPlan::vanilla(MetadataModel::Copying));
        let before = rtm.pool.available();
        for _ in 0..100 {
            push_one(&mut rtm, &mut mem);
        }
        assert_eq!(rtm.pool.available(), before, "alloc/free balanced");
    }

    #[test]
    fn profiled_run_attributes_every_cost() {
        let mut mem = MemoryHierarchy::skylake(1);
        mem.enable_attribution();
        let (mut rtm, _s) = rt(ExecPlan::vanilla(MetadataModel::Copying));
        let mut total = Cost::ZERO;
        for _ in 0..64 {
            let (_, c) = push_one(&mut rtm, &mut mem);
            total += c;
        }
        let recs = mem.profile_records();
        // Per-element names exist and the per-hop packet counts match.
        let null = recs.iter().find(|(n, _)| n.starts_with("Null@")).unwrap();
        assert_eq!(null.1.packets, 64);
        let sink = recs.iter().find(|(n, _)| n == "ToDPDKDevice(out)").unwrap();
        assert_eq!(sink.1.packets, 64);
        let meta = recs.iter().find(|(n, _)| n == "metadata").unwrap();
        assert!(meta.1.cost.instructions > 0, "begin/end_packet attributed");
        // Attributed costs sum to exactly what the packets were charged.
        let sum = recs.iter().fold(Cost::ZERO, |acc, (_, p)| acc + p.cost);
        assert_eq!(sum.instructions, total.instructions);
        assert!((sum.cycles - total.cycles).abs() < 1e-6);
        assert!((sum.uncore_ns - total.uncore_ns).abs() < 1e-6);
    }

    #[test]
    fn attribution_does_not_change_charges() {
        let run = |profile: bool| {
            let mut mem = MemoryHierarchy::skylake(1);
            if profile {
                mem.enable_attribution();
            }
            let (mut rtm, _s) = rt(ExecPlan::vanilla(MetadataModel::Copying));
            let mut total = Cost::ZERO;
            for _ in 0..128 {
                let (_, c) = push_one(&mut rtm, &mut mem);
                total += c;
            }
            (total, mem.counters())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn injected_slowdown_inflates_cost_only_in_window() {
        use pm_sim::{fault::FaultKind, FaultPlan, SimTime};
        let mut mem = MemoryHierarchy::skylake(1);
        let (mut rtm, _s) = rt(ExecPlan::vanilla(MetadataModel::Copying));
        // Warm the caches so repeated pushes cost the same.
        for _ in 0..256 {
            push_one(&mut rtm, &mut mem);
        }
        let (_, baseline) = push_one(&mut rtm, &mut mem);

        let plan = FaultPlan::new(0).with(
            FaultKind::Slowdown {
                element: "Null".into(),
                factor_x1000: 3000,
            },
            SimTime::ZERO,
            SimTime::from_us(1.0),
        );
        rtm.set_fault_slowdowns(&plan);
        // desc() arrives at t=0, inside the window.
        let (_, slowed) = push_one(&mut rtm, &mut mem);
        assert!(
            slowed.cycles > baseline.cycles,
            "3x Null must cost more: {} vs {}",
            slowed.cycles,
            baseline.cycles
        );

        // An expired window costs nothing again.
        rtm.set_fault_slowdowns(&FaultPlan::new(0).with(
            FaultKind::Slowdown {
                element: "Null".into(),
                factor_x1000: 3000,
            },
            SimTime::from_us(5.0),
            SimTime::from_us(6.0),
        ));
        let (_, after) = push_one(&mut rtm, &mut mem);
        assert_eq!(after, baseline, "outside the window behaviour is identical");

        // A plan that names no element in this graph resets to default.
        rtm.set_fault_slowdowns(&FaultPlan::new(0));
        assert!(rtm.slowdowns.is_none());
    }

    #[test]
    fn slowdown_keeps_attribution_reconciled() {
        use pm_sim::{fault::FaultKind, FaultPlan, SimTime};
        let mut mem = MemoryHierarchy::skylake(1);
        mem.enable_attribution();
        let (mut rtm, _s) = rt(ExecPlan::vanilla(MetadataModel::Copying));
        rtm.set_fault_slowdowns(&FaultPlan::new(0).with(
            FaultKind::Slowdown {
                element: "Null".into(),
                factor_x1000: 2500,
            },
            SimTime::ZERO,
            SimTime::MAX,
        ));
        let mut total = Cost::ZERO;
        for _ in 0..64 {
            let (_, c) = push_one(&mut rtm, &mut mem);
            total += c;
        }
        let recs = mem.profile_records();
        let sum = recs.iter().fold(Cost::ZERO, |acc, (_, p)| acc + p.cost);
        assert_eq!(sum.instructions, total.instructions);
        assert!((sum.cycles - total.cycles).abs() < 1e-6);
    }

    #[test]
    fn span_recording_is_cost_neutral_and_labels_hops() {
        let run = |spans: bool| {
            let mut mem = MemoryHierarchy::skylake(1);
            let (mut rtm, _s) = rt(ExecPlan::vanilla(MetadataModel::Copying));
            rtm.set_span_recording(spans);
            let mut total = Cost::ZERO;
            let mut last_spans = Vec::new();
            for _ in 0..64 {
                let (_, c) = push_one(&mut rtm, &mut mem);
                total += c;
                last_spans.clear();
                rtm.take_spans(&mut last_spans);
            }
            (total, mem.counters(), last_spans)
        };
        let (off_cost, off_ctr, off_spans) = run(false);
        let (on_cost, on_ctr, on_spans) = run(true);
        assert_eq!(off_cost, on_cost, "recording must not change charges");
        assert_eq!(off_ctr, on_ctr);
        assert!(off_spans.is_empty(), "no spans while recording is off");
        // FWD walks Null then the sink; labels match attribution scopes.
        let labels: Vec<&str> = on_spans.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["Null@1", "ToDPDKDevice(out)"]);
        assert!(on_spans.iter().all(|(_, c)| c.instructions > 0));
    }

    #[test]
    fn xchange_begin_is_nearly_free() {
        let mut mem = MemoryHierarchy::skylake(1);
        let (mut rtm, _s) = rt(ExecPlan::vanilla(MetadataModel::XChange));
        let plan = rtm.plan().clone();
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        let d = desc();
        let meta = rtm.begin_packet(&mut ctx, &d);
        assert_eq!(meta, d.meta_addr, "X-Change uses the driver-written slot");
        let c = ctx.take_cost();
        assert_eq!(c.uncore_ns, 0.0);
        assert!(
            c.instructions <= 8,
            "cast-only entry, got {}",
            c.instructions
        );
    }
}
