//! The element abstraction and the charged execution context.
//!
//! Elements do **real work on real packet bytes** (parse headers, rewrite
//! addresses, look up routes) and, alongside, **charge** their memory
//! touches and compute to the simulation context [`Ctx`]. The charging
//! API is deliberately explicit — which lines an element touches is the
//! object of study in this reproduction.

use crate::config::{Args, ConfigError};
use crate::plan::ExecPlan;
use pm_dpdk::RxDesc;
use pm_mem::{AccessKind, AddressSpace, Cost, MemoryHierarchy, Region};
use std::collections::BTreeMap;

/// What kind of node an element is in the push graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementKind {
    /// Produces packets (e.g. `FromDPDKDevice`); driven by the engine.
    Source,
    /// Transforms/filters packets.
    Processing,
    /// Consumes packets (e.g. `ToDPDKDevice`); marks the TX boundary.
    Sink,
}

/// The result of processing one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Emit on the given output port.
    Forward(u16),
    /// Drop the packet.
    Drop,
}

/// Functional annotation values (the data that, in Click, lives in the
/// `Packet` object's 48-byte annotation area).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Annos {
    /// Destination-IP annotation (set by routing, read by ARP logic).
    pub dst_ip: [u8; 4],
    /// Paint annotation (input-interface marking).
    pub paint: u8,
    /// VLAN TCI annotation.
    pub vlan_tci: u16,
    /// Ingress port annotation.
    pub port: u16,
}

/// A packet travelling through the graph: real bytes + descriptor +
/// annotation values.
#[derive(Debug)]
pub struct Pkt<'a> {
    /// The frame bytes (the buffer's data area; valid length is `len`).
    pub data: &'a mut [u8],
    /// Current frame length.
    pub len: usize,
    /// The driver descriptor this packet arrived with.
    pub desc: RxDesc,
    /// Address of the framework's `Packet` metadata object for this
    /// packet (model-dependent; set by the runtime).
    pub meta_addr: u64,
    /// Annotation values.
    pub annos: Annos,
}

impl Pkt<'_> {
    /// The valid frame bytes.
    pub fn frame(&self) -> &[u8] {
        &self.data[..self.len]
    }

    /// The valid frame bytes, mutably.
    pub fn frame_mut(&mut self) -> &mut [u8] {
        &mut self.data[..self.len]
    }
}

/// Per-field access counts collected when profiling is enabled (feeds
/// the struct-reordering pass).
pub type FieldProfile = BTreeMap<&'static str, u64>;

/// Occupancy and policy counters for one element-owned lookup table
/// (flow table, route trie, conntrack …), surfaced into the run
/// artifact by the engine for workload runs. Counters are host-side
/// bookkeeping only — reading them never charges the simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Element instance name (filled in by the graph runtime).
    pub name: String,
    /// Table family: `"cuckoo"`, `"trie"`, `"rules"`.
    pub kind: &'static str,
    /// Maximum entries the table can hold.
    pub capacity: u64,
    /// Entries currently stored.
    pub occupancy: u64,
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that hit a live entry.
    pub hits: u64,
    /// Entries ever inserted.
    pub insertions: u64,
    /// Entries removed by an idle-timeout policy.
    pub expiries: u64,
    /// Entries displaced out of a full table (capacity eviction).
    pub evictions: u64,
    /// Cuckoo displacement steps taken across all inserts.
    pub displacements: u64,
    /// Longest single displacement chain observed.
    pub max_chain: u64,
}

/// The charged execution context handed to every element.
pub struct Ctx<'a> {
    /// Executing core.
    pub core: usize,
    /// The memory hierarchy all charges go through.
    pub mem: &'a mut MemoryHierarchy,
    /// Cost accumulated so far in this batch.
    pub cost: Cost,
    /// The active execution plan.
    pub plan: &'a ExecPlan,
    /// The current element's state region (set by the runtime per hop).
    pub state: Region,
    /// Packet-metadata field profile, when profiling.
    pub profile: Option<FieldProfile>,
}

impl<'a> Ctx<'a> {
    /// Creates a context for one core.
    pub fn new(core: usize, mem: &'a mut MemoryHierarchy, plan: &'a ExecPlan) -> Self {
        Ctx {
            core,
            mem,
            cost: Cost::ZERO,
            plan,
            state: Region { base: 0, size: 1 },
            profile: None,
        }
    }

    /// Enables packet-metadata field profiling.
    pub fn with_profiling(mut self) -> Self {
        self.profile = Some(FieldProfile::new());
        self
    }

    /// Charges `instr` instructions of straight-line compute.
    #[inline]
    pub fn compute(&mut self, instr: u64) {
        self.cost += Cost::compute(instr);
    }

    /// Charges an arbitrary cost.
    #[inline]
    pub fn charge(&mut self, c: Cost) {
        self.cost += c;
    }

    /// Charges a load of `len` bytes at simulated address `addr`.
    #[inline]
    pub fn load(&mut self, addr: u64, len: u64) {
        self.cost += self.mem.access(self.core, addr, len, AccessKind::Load);
        self.cost += Cost::compute(1);
    }

    /// Charges a store of `len` bytes at simulated address `addr`.
    #[inline]
    pub fn store(&mut self, addr: u64, len: u64) {
        self.cost += self.mem.access(self.core, addr, len, AccessKind::Store);
        self.cost += Cost::compute(1);
    }

    /// Charges an access to the current element's own state.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside the element's state region.
    pub fn touch_state(&mut self, off: u64, len: u64, kind: AccessKind) {
        assert!(
            off + len <= self.state.size,
            "state access out of bounds: {off}+{len} > {}",
            self.state.size
        );
        self.cost += self.mem.access(self.core, self.state.base + off, len, kind);
    }

    /// Charges a read of packet data bytes `off..off+len`.
    pub fn read_data(&mut self, pkt: &Pkt<'_>, off: u64, len: u64) {
        self.cost += self
            .mem
            .access(self.core, pkt.desc.data_addr + off, len, AccessKind::Load);
        self.cost += Cost::compute(len.div_ceil(8));
    }

    /// Charges a write of packet data bytes `off..off+len`.
    pub fn write_data(&mut self, pkt: &Pkt<'_>, off: u64, len: u64) {
        self.cost += self
            .mem
            .access(self.core, pkt.desc.data_addr + off, len, AccessKind::Store);
        self.cost += Cost::compute(len.div_ceil(8));
    }

    fn meta_field_addr(&mut self, pkt: &Pkt<'_>, field: &'static str) -> (u64, u64) {
        if let Some(p) = &mut self.profile {
            *p.entry(field).or_insert(0) += 1;
        }
        let f = self
            .plan
            .packet_layout
            .field(field)
            .unwrap_or_else(|| panic!("packet layout has no field {field}"));
        (pkt.meta_addr + u64::from(f.offset), u64::from(f.size))
    }

    /// Charges a read of a `Packet`-object metadata field.
    ///
    /// Under SROA (static graph + Copying) the object is register/stack
    /// promoted, so the access costs only the instruction.
    pub fn read_meta(&mut self, pkt: &Pkt<'_>, field: &'static str) {
        let (addr, size) = self.meta_field_addr(pkt, field);
        if self.plan.sroa_active() {
            self.cost += Cost::compute(1);
        } else {
            self.cost += self.mem.access(self.core, addr, size, AccessKind::Load);
            self.cost += Cost::compute(1);
        }
    }

    /// Charges a write of a `Packet`-object metadata field.
    pub fn write_meta(&mut self, pkt: &Pkt<'_>, field: &'static str) {
        let (addr, size) = self.meta_field_addr(pkt, field);
        if self.plan.sroa_active() {
            self.cost += Cost::compute(1);
        } else {
            self.cost += self.mem.access(self.core, addr, size, AccessKind::Store);
            self.cost += Cost::compute(1);
        }
    }

    /// Takes the accumulated cost, resetting it to zero.
    pub fn take_cost(&mut self) -> Cost {
        std::mem::replace(&mut self.cost, Cost::ZERO)
    }
}

/// A packet-processing element.
///
/// Implementations do real work on `pkt.data` and charge their memory
/// and compute through `ctx`.
pub trait Element {
    /// The element's Click class name (e.g. `"CheckIPHeader"`).
    fn class_name(&self) -> &'static str;

    /// Source / processing / sink role.
    fn kind(&self) -> ElementKind {
        ElementKind::Processing
    }

    /// Applies configuration arguments. Called once at graph build.
    fn configure(&mut self, args: &Args) -> Result<(), ConfigError> {
        let _ = args;
        Ok(())
    }

    /// Allocates any large state (tables, arrays) in the simulated
    /// address space. Called once after `configure`.
    fn setup(&mut self, space: &mut AddressSpace) {
        let _ = space;
    }

    /// Number of output ports.
    fn n_outputs(&self) -> u16 {
        1
    }

    /// Size in bytes of the element *object* (its scalar state — tables
    /// are allocated in `setup`). Determines arena/heap footprint.
    fn state_size(&self) -> u64 {
        64
    }

    /// Number of configuration-parameter words the per-packet path loads
    /// when constants are *not* embedded.
    fn param_loads(&self) -> u32 {
        1
    }

    /// Processes one packet.
    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: &mut Pkt<'_>) -> Action;

    /// Occupancy/policy counters for the element's lookup table, if it
    /// owns one (the runtime fills in the instance name).
    fn table_stats(&self) -> Option<TableStats> {
        None
    }

    /// The simulated regions backing the element's tables (allocated in
    /// [`Self::setup`]); the engine remaps these onto hugepages when the
    /// experiment asks for hugepage-backed tables.
    fn table_regions(&self) -> Vec<Region> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecPlan;
    use pm_dpdk::MetadataModel;

    fn desc() -> RxDesc {
        RxDesc {
            buf_id: 0,
            len: 64,
            rss_hash: 0,
            arrival: pm_sim::SimTime::ZERO,
            gen: pm_sim::SimTime::ZERO,
            seq: 0,
            data_addr: 0x10_000,
            meta_addr: 0x20_000,
            xslot: None,
        }
    }

    #[test]
    fn ctx_charges_accumulate() {
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.compute(40);
        ctx.load(0x1000, 8);
        ctx.store(0x2000, 8);
        let c = ctx.take_cost();
        assert!(c.instructions >= 42);
        assert!(c.uncore_ns > 0.0, "cold accesses hit DRAM");
        assert_eq!(ctx.cost, Cost::ZERO);
    }

    #[test]
    fn meta_access_charges_at_layout_offset() {
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut d = desc();
        d.meta_addr = 0x40_000;
        let mut data = vec![0u8; 64];
        let pkt = Pkt {
            data: &mut data,
            len: 64,
            desc: d,
            meta_addr: 0x40_000,
            annos: Annos::default(),
        };
        let mut ctx = Ctx::new(0, &mut mem, &plan).with_profiling();
        ctx.read_meta(&pkt, "dst_ip_anno");
        ctx.write_meta(&pkt, "paint_anno");
        let prof = ctx.profile.take().unwrap();
        assert_eq!(prof.get("dst_ip_anno"), Some(&1));
        assert_eq!(prof.get("paint_anno"), Some(&1));
        assert!(ctx.cost.instructions >= 2);
    }

    #[test]
    fn sroa_meta_access_is_free_of_memory() {
        let mut mem = MemoryHierarchy::skylake(1);
        let mut plan = ExecPlan::packetmill(MetadataModel::Copying);
        assert!(plan.sroa_active());
        let mut data = vec![0u8; 64];
        let pkt = Pkt {
            data: &mut data,
            len: 64,
            desc: desc(),
            meta_addr: 0x40_000,
            annos: Annos::default(),
        };
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.read_meta(&pkt, "dst_ip_anno");
        let c = ctx.take_cost();
        assert_eq!(c.uncore_ns, 0.0);
        assert_eq!(mem.counters().loads, 0, "SROA: no memory access at all");
        // Turning static graph off re-enables the memory charge.
        plan.static_graph = false;
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        let pkt2 = Pkt {
            data: &mut data,
            len: 64,
            desc: desc(),
            meta_addr: 0x40_000,
            annos: Annos::default(),
        };
        ctx.read_meta(&pkt2, "dst_ip_anno");
        assert_eq!(mem.counters().loads, 1);
    }

    #[test]
    #[should_panic(expected = "state access out of bounds")]
    fn state_bounds_checked() {
        let mut mem = MemoryHierarchy::skylake(1);
        let plan = ExecPlan::vanilla(MetadataModel::Copying);
        let mut ctx = Ctx::new(0, &mut mem, &plan);
        ctx.state = Region {
            base: 0x1000,
            size: 64,
        };
        ctx.touch_state(60, 8, AccessKind::Load);
    }

    #[test]
    fn pkt_frame_views() {
        let mut data = vec![7u8; 128];
        let mut pkt = Pkt {
            data: &mut data,
            len: 60,
            desc: desc(),
            meta_addr: 0,
            annos: Annos::default(),
        };
        assert_eq!(pkt.frame().len(), 60);
        pkt.frame_mut()[0] = 1;
        assert_eq!(pkt.data[0], 1);
    }
}
