//! The execution plan: which PacketMill optimizations are active.
//!
//! `pm-compile`'s pass pipeline transforms a vanilla plan step by step;
//! the runtime consults the plan on every dispatch, parameter access, and
//! metadata touch. The five evaluation variants of Fig. 4 / Table 1 are
//! plan constructors here.

use crate::packet::default_packet_layout;
use crate::StructLayout;
use pm_dpdk::MetadataModel;

/// How element-to-element calls are performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Indirect call through the element vtable (vanilla Click).
    Virtual,
    /// Direct call — the `click-devirtualize` result: the callee type is
    /// known, but the call remains (function pointer replaced).
    Direct,
    /// Fully inlined — static graph embedding lets the compiler inline
    /// the whole per-packet path.
    Inlined,
}

/// The set of optimizations the runtime honours.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPlan {
    /// Call dispatch mode.
    pub dispatch: DispatchMode,
    /// Element parameters embedded as constants (no per-packet loads,
    /// folded branches).
    pub constants_embedded: bool,
    /// Elements + connections declared statically: arena state layout,
    /// embedded next-hops, and (with Copying) scalar replacement of the
    /// per-packet `Packet` object.
    pub static_graph: bool,
    /// Metadata-management model.
    pub metadata_model: MetadataModel,
    /// The `Packet` class layout (replaced by the reordering pass).
    pub packet_layout: StructLayout,
    /// Recycle `Packet` objects LIFO instead of FIFO (warm-pool
    /// ablation; real FastClick pools behave FIFO under forwarding).
    pub lifo_packet_pool: bool,
}

impl ExecPlan {
    /// Vanilla FastClick: virtual dispatch, dynamic graph, parameters in
    /// memory.
    pub fn vanilla(model: MetadataModel) -> Self {
        ExecPlan {
            dispatch: DispatchMode::Virtual,
            constants_embedded: false,
            static_graph: false,
            metadata_model: model,
            packet_layout: default_packet_layout(),
            lifo_packet_pool: false,
        }
    }

    /// `click-devirtualize` only (Fig. 4 "Devirtualize").
    pub fn devirtualized(model: MetadataModel) -> Self {
        ExecPlan {
            dispatch: DispatchMode::Direct,
            ..Self::vanilla(model)
        }
    }

    /// Constant embedding only (Fig. 4 "Constant Embedding").
    pub fn constants(model: MetadataModel) -> Self {
        ExecPlan {
            constants_embedded: true,
            ..Self::vanilla(model)
        }
    }

    /// Static graph only (Fig. 4 "Static Graph"): implies full inlining.
    pub fn static_graph(model: MetadataModel) -> Self {
        ExecPlan {
            dispatch: DispatchMode::Inlined,
            static_graph: true,
            ..Self::vanilla(model)
        }
    }

    /// All source-code optimizations (Fig. 4 "All").
    pub fn all_source_opts(model: MetadataModel) -> Self {
        ExecPlan {
            dispatch: DispatchMode::Inlined,
            constants_embedded: true,
            static_graph: true,
            ..Self::vanilla(model)
        }
    }

    /// Full PacketMill: all source optimizations. Combine with
    /// [`MetadataModel::XChange`] for the paper's headline configuration
    /// (Fig. 1 "PacketMill").
    pub fn packetmill(model: MetadataModel) -> Self {
        Self::all_source_opts(model)
    }

    /// True when the per-packet `Packet` object is scalar-replaced: the
    /// static graph inlines the whole path, so (under Copying) the
    /// mbuf→Packet conversion lives in registers and the object pool is
    /// bypassed.
    pub fn sroa_active(&self) -> bool {
        self.static_graph && self.metadata_model == MetadataModel::Copying
    }

    /// Short human-readable tag for tables.
    pub fn label(&self) -> String {
        let opt = match (self.dispatch, self.constants_embedded, self.static_graph) {
            (DispatchMode::Virtual, false, false) => "vanilla".to_string(),
            (DispatchMode::Direct, false, false) => "devirtualize".to_string(),
            (DispatchMode::Virtual, true, false) => "constants".to_string(),
            (DispatchMode::Inlined, false, true) => "static-graph".to_string(),
            (DispatchMode::Inlined, true, true) => "all".to_string(),
            (d, c, s) => format!("{d:?}/const={c}/static={s}"),
        };
        format!("{opt}+{}", self.metadata_model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_constructors() {
        let v = ExecPlan::vanilla(MetadataModel::Copying);
        assert_eq!(v.dispatch, DispatchMode::Virtual);
        assert!(!v.constants_embedded && !v.static_graph);
        assert!(!v.sroa_active());

        let d = ExecPlan::devirtualized(MetadataModel::Copying);
        assert_eq!(d.dispatch, DispatchMode::Direct);

        let s = ExecPlan::static_graph(MetadataModel::Copying);
        assert!(s.sroa_active());
        assert_eq!(s.dispatch, DispatchMode::Inlined);

        let a = ExecPlan::all_source_opts(MetadataModel::XChange);
        assert!(a.constants_embedded && a.static_graph);
        assert!(!a.sroa_active(), "SROA applies to the Copying model only");
    }

    #[test]
    fn labels() {
        assert_eq!(
            ExecPlan::vanilla(MetadataModel::Copying).label(),
            "vanilla+copying"
        );
        assert_eq!(
            ExecPlan::packetmill(MetadataModel::XChange).label(),
            "all+x-change"
        );
    }
}
