//! Packet-chaining models: vector and linked-list batches.
//!
//! FastClick chains packets through the graph as a **linked list**
//! (each `Packet` holds `next`/`prev` pointers); DPDK applications and
//! BESS pass **vectors** (arrays of descriptors). One of X-Change's
//! claimed benefits (paper §3.1) is that the application can "easily use
//! different packet chaining models (e.g., vector, linked list, or a
//! combination of both) to better fit their needs" — this module
//! provides both models over the same packet identifiers, with the
//! traversal/split/merge operations a batching framework needs, so the
//! choice can be benchmarked (see `pm-bench`'s `micro` bench) and
//! exercised in tests.
//!
//! Identifiers are `u32` packet/buffer ids, matching the rest of the
//! workspace; the linked list is arena-backed (indices, not pointers),
//! which is also how a cache-conscious C implementation lays it out.

/// A vector batch: contiguous descriptor storage, cache-friendly
/// traversal, O(1) append.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorBatch {
    ids: Vec<u32>,
}

impl VectorBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch from ids.
    pub fn from_ids(ids: Vec<u32>) -> Self {
        VectorBatch { ids }
    }

    /// Appends a packet.
    pub fn push(&mut self, id: u32) {
        self.ids.push(id);
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ids.iter().copied()
    }

    /// Splits the batch by a predicate into (matching, rest) — the
    /// classifier operation on batches.
    pub fn split(self, mut pred: impl FnMut(u32) -> bool) -> (VectorBatch, VectorBatch) {
        let mut yes = VectorBatch::new();
        let mut no = VectorBatch::new();
        for id in self.ids {
            if pred(id) {
                yes.push(id);
            } else {
                no.push(id);
            }
        }
        (yes, no)
    }

    /// Appends all of `other` (vector merge: O(n) memcpy-like).
    pub fn merge(&mut self, other: VectorBatch) {
        self.ids.extend(other.ids);
    }
}

/// Sentinel for "no node".
const NIL: u32 = u32::MAX;

/// An arena of linked-list nodes shared by many [`LinkedBatch`]es
/// (FastClick embeds the links in the `Packet` objects; the arena plays
/// that role, indexed by packet id).
#[derive(Debug, Clone)]
pub struct BatchArena {
    next: Vec<u32>,
}

impl BatchArena {
    /// An arena with room for packet ids `0..capacity`.
    pub fn new(capacity: u32) -> Self {
        BatchArena {
            next: vec![NIL; capacity as usize],
        }
    }

    /// Capacity in packet ids.
    pub fn capacity(&self) -> u32 {
        self.next.len() as u32
    }
}

/// A linked-list batch: O(1) merge and head-split, per-hop pointer
/// chasing (the trade-off against [`VectorBatch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkedBatch {
    head: u32,
    tail: u32,
    count: u32,
}

impl LinkedBatch {
    /// An empty batch.
    pub fn new() -> Self {
        LinkedBatch {
            head: NIL,
            tail: NIL,
            count: 0,
        }
    }

    /// Builds a batch from ids in order.
    pub fn from_ids(arena: &mut BatchArena, ids: &[u32]) -> Self {
        let mut b = LinkedBatch::new();
        for &id in ids {
            b.push(arena, id);
        }
        b
    }

    /// Number of packets.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Appends a packet (O(1)).
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the arena.
    pub fn push(&mut self, arena: &mut BatchArena, id: u32) {
        arena.next[id as usize] = NIL;
        if self.head == NIL {
            self.head = id;
        } else {
            arena.next[self.tail as usize] = id;
        }
        self.tail = id;
        self.count += 1;
    }

    /// Removes and returns the first packet (O(1)).
    pub fn pop_front(&mut self, arena: &BatchArena) -> Option<u32> {
        if self.head == NIL {
            return None;
        }
        let id = self.head;
        self.head = arena.next[id as usize];
        if self.head == NIL {
            self.tail = NIL;
        }
        self.count -= 1;
        Some(id)
    }

    /// Appends all of `other` (O(1) — the linked list's advantage).
    pub fn merge(&mut self, arena: &mut BatchArena, other: LinkedBatch) {
        if other.is_empty() {
            return;
        }
        if self.head == NIL {
            *self = other;
            return;
        }
        arena.next[self.tail as usize] = other.head;
        self.tail = other.tail;
        self.count += other.count;
    }

    /// Iterates in order.
    pub fn iter<'a>(&self, arena: &'a BatchArena) -> LinkedIter<'a> {
        LinkedIter {
            arena,
            cur: self.head,
        }
    }

    /// Splits by a predicate into (matching, rest), both preserving
    /// relative order (O(n), O(1) extra space).
    pub fn split(
        self,
        arena: &mut BatchArena,
        mut pred: impl FnMut(u32) -> bool,
    ) -> (LinkedBatch, LinkedBatch) {
        let mut yes = LinkedBatch::new();
        let mut no = LinkedBatch::new();
        let mut cur = self.head;
        while cur != NIL {
            let next = arena.next[cur as usize];
            if pred(cur) {
                yes.push(arena, cur);
            } else {
                no.push(arena, cur);
            }
            cur = next;
        }
        (yes, no)
    }
}

impl Default for LinkedBatch {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over a [`LinkedBatch`].
#[derive(Debug)]
pub struct LinkedIter<'a> {
    arena: &'a BatchArena,
    cur: u32,
}

impl Iterator for LinkedIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.cur == NIL {
            return None;
        }
        let id = self.cur;
        self.cur = self.arena.next[id as usize];
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_basics() {
        let mut b = VectorBatch::new();
        assert!(b.is_empty());
        for i in 0..5 {
            b.push(i);
        }
        assert_eq!(b.len(), 5);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn vector_split_and_merge() {
        let b = VectorBatch::from_ids((0..10).collect());
        let (even, mut odd) = b.split(|id| id % 2 == 0);
        assert_eq!(even.iter().collect::<Vec<_>>(), vec![0, 2, 4, 6, 8]);
        odd.merge(even);
        assert_eq!(odd.len(), 10);
        assert_eq!(odd.iter().next(), Some(1));
    }

    #[test]
    fn linked_push_iter() {
        let mut arena = BatchArena::new(16);
        let b = LinkedBatch::from_ids(&mut arena, &[3, 1, 4, 1 + 4, 9]);
        assert_eq!(b.len(), 5);
        assert_eq!(b.iter(&arena).collect::<Vec<_>>(), vec![3, 1, 4, 5, 9]);
    }

    #[test]
    fn linked_pop_front() {
        let mut arena = BatchArena::new(8);
        let mut b = LinkedBatch::from_ids(&mut arena, &[7, 2, 5]);
        assert_eq!(b.pop_front(&arena), Some(7));
        assert_eq!(b.pop_front(&arena), Some(2));
        assert_eq!(b.pop_front(&arena), Some(5));
        assert_eq!(b.pop_front(&arena), None);
        assert!(b.is_empty());
    }

    #[test]
    fn linked_merge_is_o1_and_ordered() {
        let mut arena = BatchArena::new(16);
        let mut a = LinkedBatch::from_ids(&mut arena, &[0, 1, 2]);
        let b = LinkedBatch::from_ids(&mut arena, &[10, 11]);
        a.merge(&mut arena, b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.iter(&arena).collect::<Vec<_>>(), vec![0, 1, 2, 10, 11]);
        // Merging into empty adopts the other list.
        let mut e = LinkedBatch::new();
        let c = LinkedBatch::from_ids(&mut arena, &[14]);
        e.merge(&mut arena, c);
        assert_eq!(e.iter(&arena).collect::<Vec<_>>(), vec![14]);
        // Merging an empty list is a no-op.
        e.merge(&mut arena, LinkedBatch::new());
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn linked_split_preserves_order() {
        let mut arena = BatchArena::new(16);
        let b = LinkedBatch::from_ids(&mut arena, &[0, 1, 2, 3, 4, 5]);
        let (low, high) = b.split(&mut arena, |id| id < 3);
        assert_eq!(low.iter(&arena).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(high.iter(&arena).collect::<Vec<_>>(), vec![3, 4, 5]);
        // Split results can be pushed to again (tail is valid).
        let mut low = low;
        low.push(&mut arena, 9);
        assert_eq!(low.iter(&arena).collect::<Vec<_>>(), vec![0, 1, 2, 9]);
    }

    #[test]
    fn models_agree_on_contents() {
        let ids: Vec<u32> = (0..64).map(|i| (i * 7) % 64).collect();
        let v = VectorBatch::from_ids(ids.clone());
        let mut arena = BatchArena::new(64);
        let l = LinkedBatch::from_ids(&mut arena, &ids);
        assert_eq!(
            v.iter().collect::<Vec<_>>(),
            l.iter(&arena).collect::<Vec<_>>()
        );
        let (va, vb) = v.split(|id| id % 3 == 0);
        let (la, lb) = l.split(&mut arena, |id| id % 3 == 0);
        assert_eq!(
            va.iter().collect::<Vec<_>>(),
            la.iter(&arena).collect::<Vec<_>>()
        );
        assert_eq!(
            vb.iter().collect::<Vec<_>>(),
            lb.iter(&arena).collect::<Vec<_>>()
        );
    }
}
